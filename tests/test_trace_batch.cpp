// Batched front-end equivalence suite (docs/MODEL.md §4e, docs/TRACE.md §4).
//
// The batch API's entire value rests on one property: next_batch is exactly
// "repeated next()" for EVERY TraceSource — same stream, same EOF position,
// same errors — so the batched simulator path can claim bit-identity by
// construction.  This suite pins that property implementation by
// implementation (generator, phased generator, file v1/v2, mmap, filtered,
// limited, shared view, vector, offset, and the default fallback) across
// batch sizes that hit the interesting boundaries: 1 (degenerate), 7
// (chunk-straddling odd size), 256 (full block), and sizes that straddle
// EOF mid-batch.  It also pins the supporting SoA pieces: the mmap reader's
// byte-level agreement with the buffered reader (including throwing at the
// SAME record on a corrupted chunk), Cache::decode_block against the scalar
// decode, and StallSeries round-tripping StallEvent exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "cpu/core.h"
#include "mem/cache.h"
#include "trace/convert.h"
#include "trace/generator.h"
#include "trace/profile.h"
#include "trace/trace_file.h"
#include "trace/trace_io.h"

namespace mapg {
namespace {

std::string tmp_path(const std::string& stem) {
  return "test_trace_batch_" + stem + ".tmp";
}

struct TempFile {
  explicit TempFile(std::string p) : path(std::move(p)) {}
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

std::vector<Instr> generate(const std::string& workload, std::uint64_t n,
                            std::uint64_t seed = 42) {
  TraceGenerator gen(*find_profile(workload), seed);
  std::vector<Instr> out;
  out.reserve(n);
  Instr instr;
  for (std::uint64_t i = 0; i < n && gen.next(instr); ++i)
    out.push_back(instr);
  return out;
}

/// Drain `src` scalar-style; `cap` bounds unbounded sources.
std::vector<Instr> scalar_read(TraceSource& src, std::uint64_t cap) {
  std::vector<Instr> out;
  Instr instr;
  while (out.size() < cap && src.next(instr)) out.push_back(instr);
  return out;
}

/// Drain `src` through next_batch with a fixed request size.  A short batch
/// must mean EOF, and the batch after EOF must stay empty — both asserted
/// here so every parametrized call re-checks the termination contract.
std::vector<Instr> batch_read(TraceSource& src, std::size_t batch,
                              std::uint64_t cap) {
  std::vector<Instr> out;
  InstrBlock block;
  while (out.size() < cap) {
    const std::size_t want = static_cast<std::size_t>(std::min<std::uint64_t>(
        batch, cap - out.size()));
    const std::size_t got = src.next_batch(block, want);
    EXPECT_EQ(got, block.count);
    for (std::size_t i = 0; i < block.count; ++i) out.push_back(block.get(i));
    if (got < want) {  // short batch == end of trace, and it must be sticky
      EXPECT_EQ(src.next_batch(block, batch), 0u);
      EXPECT_EQ(block.count, 0u);
      break;
    }
  }
  return out;
}

void expect_same_stream(const std::vector<Instr>& a,
                        const std::vector<Instr>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].op, b[i].op) << "record " << i;
    ASSERT_EQ(a[i].addr, b[i].addr) << "record " << i;
    ASSERT_EQ(a[i].dep_dist, b[i].dep_dist) << "record " << i;
  }
}

/// Batch sizes exercised for every implementation: degenerate, odd (so
/// batches straddle chunk boundaries), a full block, and a size chosen so
/// the final request straddles EOF whenever the stream length below is not
/// a multiple of it.
const std::size_t kBatchSizes[] = {1, 7, 256, 100};

/// Stream length used for bounded sources: not a multiple of any batch size
/// above (4099 is prime), so every size ends on a short, EOF-straddling
/// batch; also not a multiple of the 1024-record chunking used for v2 files.
constexpr std::uint64_t kStreamLen = 4099;

// --- property: next_batch == repeated next, per implementation -------------

TEST(TraceBatch, GeneratorMatchesScalar) {
  for (const char* wl : {"mcf-like", "gamess-like"}) {
    TraceGenerator gen(*find_profile(wl), 7);
    const std::vector<Instr> ref = scalar_read(gen, 10'000);
    for (const std::size_t b : kBatchSizes) {
      gen.reset();
      expect_same_stream(ref, batch_read(gen, b, 10'000));
    }
  }
}

TEST(TraceBatch, PhasedGeneratorMatchesScalarAcrossPhaseSwitches) {
  const WorkloadProfile a = *find_profile("mcf-like");
  const WorkloadProfile b = *find_profile("gamess-like");
  // 997 is prime, so phase switches never align with any batch boundary.
  PhasedTraceGenerator scalar_gen(a, b, 997, 11);
  const std::vector<Instr> ref = scalar_read(scalar_gen, 10'000);
  for (const std::size_t bs : kBatchSizes) {
    PhasedTraceGenerator gen(a, b, 997, 11);
    expect_same_stream(ref, batch_read(gen, bs, 10'000));
    // Phase accounting advances identically (switch count is observable).
    EXPECT_EQ(gen.phase_switches(), scalar_gen.phase_switches());
  }
}

TEST(TraceBatch, VectorSourceMatchesScalar) {
  const std::vector<Instr> ref = generate("mcf-like", kStreamLen);
  for (const std::size_t b : kBatchSizes) {
    VectorTraceSource src(ref);
    expect_same_stream(ref, batch_read(src, b, kStreamLen + 10));
  }
}

TEST(TraceBatch, SharedViewMatchesScalar) {
  const auto buf = std::make_shared<const std::vector<Instr>>(
      generate("omnetpp-like", kStreamLen));
  for (const std::size_t b : kBatchSizes) {
    SharedTraceView view(buf);
    expect_same_stream(*buf, batch_read(view, b, kStreamLen + 10));
  }
}

TEST(TraceBatch, LimitedSourceMatchesScalarAndHonorsTheCap) {
  const std::vector<Instr> ref = generate("gcc-like", kStreamLen);
  // Cap below, at, and above the inner stream's length.
  for (const std::uint64_t limit : {std::uint64_t{1003}, kStreamLen,
                                    kStreamLen + 500}) {
    VectorTraceSource inner_scalar(ref);
    LimitedTraceSource scalar_src(inner_scalar, limit);
    const std::vector<Instr> want = scalar_read(scalar_src, limit + 10);
    for (const std::size_t b : kBatchSizes) {
      VectorTraceSource inner(ref);
      LimitedTraceSource src(inner, limit);
      expect_same_stream(want, batch_read(src, b, limit + 10));
    }
  }
}

TEST(TraceBatch, OffsetSourceRebasesOnlyRealAddresses) {
  // Generator streams contain kNoAddr (non-memory ops): the offset rewrite
  // must skip exactly those lanes, batch and scalar alike.
  const std::vector<Instr> ref = generate("gamess-like", kStreamLen);
  VectorTraceSource inner_scalar(ref);
  OffsetTraceSource scalar_src(inner_scalar, 0x4000'0000ULL);
  const std::vector<Instr> want = scalar_read(scalar_src, kStreamLen);
  for (const std::size_t b : kBatchSizes) {
    VectorTraceSource inner(ref);
    OffsetTraceSource src(inner, 0x4000'0000ULL);
    expect_same_stream(want, batch_read(src, b, kStreamLen));
  }
  bool saw_filler = false;
  for (const Instr& instr : want) saw_filler |= instr.addr == kNoAddr;
  EXPECT_TRUE(saw_filler);  // the property above actually exercised the skip
}

TEST(TraceBatch, FilteredSourceMatchesScalarLruStateAndAll) {
  const std::vector<Instr> ref = generate("mcf-like", kStreamLen);
  // The filter is stateful (LRU): each run gets its own, so divergence in
  // consultation ORDER — not just count — would show up as a different
  // rewritten stream.
  VectorTraceSource inner_scalar(ref);
  CacheFilter filter_scalar(32 * 1024, 64, 4);
  FilteredTraceSource scalar_src(inner_scalar, filter_scalar);
  const std::vector<Instr> want = scalar_read(scalar_src, kStreamLen);
  for (const std::size_t b : kBatchSizes) {
    VectorTraceSource inner(ref);
    CacheFilter filter(32 * 1024, 64, 4);
    FilteredTraceSource src(inner, filter);
    expect_same_stream(want, batch_read(src, b, kStreamLen));
    EXPECT_EQ(filter.hits(), filter_scalar.hits());
    EXPECT_EQ(filter.misses(), filter_scalar.misses());
  }
}

TEST(TraceBatch, FileV1MatchesScalar) {
  const std::vector<Instr> ref = generate("mcf-like", kStreamLen);
  TempFile f(tmp_path("v1"));
  {
    VectorTraceSource s(ref);
    ASSERT_TRUE(write_trace_file(f.path, s, ref.size()));
  }
  for (const std::size_t b : kBatchSizes) {
    FileTraceSource src(f.path);
    expect_same_stream(ref, batch_read(src, b, kStreamLen + 10));
  }
}

TEST(TraceBatch, FileV2MatchesScalarAcrossChunkBoundaries) {
  const std::vector<Instr> ref = generate("omnetpp-like", kStreamLen);
  TempFile f(tmp_path("v2"));
  {
    // 1024-record chunks: every batch size above straddles chunk boundaries
    // somewhere in the stream, and kStreamLen leaves a short final chunk.
    VectorTraceSource s(ref);
    ASSERT_TRUE(write_trace_file_v2(f.path, s, ref.size(), nullptr, 1024));
  }
  for (const std::size_t b : kBatchSizes) {
    FileTraceSource src(f.path);
    expect_same_stream(ref, batch_read(src, b, kStreamLen + 10));
  }
}

TEST(TraceBatch, MmapMatchesScalarOnBothFormats) {
  const std::vector<Instr> ref = generate("gcc-like", kStreamLen);
  TempFile v1(tmp_path("mmap_v1")), v2(tmp_path("mmap_v2"));
  {
    VectorTraceSource s(ref);
    ASSERT_TRUE(write_trace_file(v1.path, s, ref.size()));
  }
  {
    VectorTraceSource s(ref);
    ASSERT_TRUE(write_trace_file_v2(v2.path, s, ref.size(), nullptr, 1024));
  }
  for (const std::string& path : {v1.path, v2.path}) {
    MmapTraceSource scalar_src(path);
    expect_same_stream(ref, scalar_read(scalar_src, kStreamLen + 10));
    for (const std::size_t b : kBatchSizes) {
      MmapTraceSource src(path);
      expect_same_stream(ref, batch_read(src, b, kStreamLen + 10));
    }
  }
}

TEST(TraceBatch, MmapAgreesWithBufferedReaderMetadataAndSeeks) {
  const std::vector<Instr> ref = generate("mcf-like", kStreamLen);
  TempFile f(tmp_path("mmap_meta"));
  {
    VectorTraceSource s(ref);
    ASSERT_TRUE(write_trace_file_v2(f.path, s, ref.size(), nullptr, 1024));
  }
  FileTraceSource buffered(f.path);
  MmapTraceSource mapped(f.path);
  EXPECT_EQ(buffered.info().records, mapped.info().records);
  EXPECT_EQ(buffered.info().version, mapped.info().version);
  EXPECT_EQ(buffered.info().stream_digest, mapped.info().stream_digest);
  EXPECT_EQ(buffered.info().n_chunks, mapped.info().n_chunks);

  // Same window from the same mid-chunk seek (chunk skipping included:
  // position 3'500 jumps over chunks the mmap reader never verified).
  for (SeekableTraceSource* src :
       {static_cast<SeekableTraceSource*>(&buffered),
        static_cast<SeekableTraceSource*>(&mapped)}) {
    src->seek(3'500);
    Instr instr;
    for (std::size_t i = 3'500; i < 3'600; ++i) {
      ASSERT_TRUE(src->next(instr));
      EXPECT_EQ(instr.addr, ref[i].addr);
    }
    src->seek(kStreamLen + 100);  // past-end clamps to clean EOF
    EXPECT_FALSE(src->next(instr));
  }
}

// --- contract details ------------------------------------------------------

TEST(TraceBatch, BatchesInterleaveFreelyWithScalarNext) {
  const std::vector<Instr> ref = generate("gamess-like", kStreamLen);
  TempFile f(tmp_path("interleave"));
  {
    VectorTraceSource s(ref);
    ASSERT_TRUE(write_trace_file_v2(f.path, s, ref.size(), nullptr, 1024));
  }
  FileTraceSource src(f.path);
  std::vector<Instr> got;
  InstrBlock block;
  Instr instr;
  // Alternate scalar draws and odd-size batches: one shared cursor.
  while (got.size() < ref.size()) {
    if (got.size() % 3 == 0 && src.next(instr)) got.push_back(instr);
    if (src.next_batch(block, 37) == 0) break;
    for (std::size_t i = 0; i < block.count; ++i) got.push_back(block.get(i));
  }
  expect_same_stream(ref, got);
}

TEST(TraceBatch, OversizedRequestClampsToBlockCapacity) {
  const std::vector<Instr> ref = generate("mcf-like", 2'000);
  VectorTraceSource src(ref);
  InstrBlock block;
  EXPECT_EQ(src.next_batch(block, 100'000), InstrBlock::kCapacity);
  TraceGenerator gen(*find_profile("mcf-like"), 3);
  EXPECT_EQ(gen.next_batch(block, 100'000), InstrBlock::kCapacity);
}

TEST(TraceBatch, RereadAfterSeekBackIsIdenticalWithMemoizedDigests) {
  // The per-chunk digest memo (trace_file.h) must be invisible: seeking back
  // and re-reading a chunk that was verified on first touch yields the same
  // records.  This is the warmup-window revisit pattern of sample/runner.
  const std::vector<Instr> ref = generate("omnetpp-like", kStreamLen);
  TempFile f(tmp_path("memo"));
  {
    VectorTraceSource s(ref);
    ASSERT_TRUE(write_trace_file_v2(f.path, s, ref.size(), nullptr, 1024));
  }
  FileTraceSource buffered(f.path);
  MmapTraceSource mapped(f.path);
  for (SeekableTraceSource* src :
       {static_cast<SeekableTraceSource*>(&buffered),
        static_cast<SeekableTraceSource*>(&mapped)}) {
    expect_same_stream(ref, scalar_read(*src, kStreamLen + 10));
    for (int pass = 0; pass < 2; ++pass) {  // revisit: memo hit both times
      src->seek(0);
      expect_same_stream(ref, batch_read(*src, 256, kStreamLen + 10));
    }
  }
}

TEST(TraceBatch, CorruptChunkThrowsAtTheSameRecordInBothReaders) {
  const std::vector<Instr> ref = generate("gcc-like", kStreamLen);
  TempFile f(tmp_path("corrupt"));
  {
    VectorTraceSource s(ref);
    ASSERT_TRUE(write_trace_file_v2(f.path, s, ref.size(), nullptr, 1024));
  }
  std::string bytes;
  {
    std::ifstream in(f.path, std::ios::binary);
    bytes.assign((std::istreambuf_iterator<char>(in)),
                 std::istreambuf_iterator<char>());
  }
  // Flip one payload byte inside the third chunk (header 40 B, 5-entry
  // index at 24 B each, two intact 1024-record chunks of 11 B records).
  const std::size_t payload_off = 40 + 5 * 24 + 2 * 1024 * 11 + 17;
  ASSERT_LT(payload_off, bytes.size());
  bytes[payload_off] = static_cast<char>(bytes[payload_off] ^ 0x40);
  std::ofstream(f.path, std::ios::binary) << bytes;

  auto scalar_served = [](SeekableTraceSource& src, bool& threw) {
    Instr instr;
    std::uint64_t served = 0;
    threw = false;
    try {
      while (src.next(instr)) ++served;
    } catch (const std::runtime_error&) {
      threw = true;
    }
    return served;
  };
  auto batch_served = [](SeekableTraceSource& src, bool& threw) {
    InstrBlock block;
    std::uint64_t served = 0;
    threw = false;
    try {
      while (src.next_batch(block, 7) == 7) served += 7;
      served += block.count;
    } catch (const std::runtime_error&) {
      threw = true;
    }
    return served;
  };
  const std::uint64_t intact = 2 * 1024;  // records in the undamaged chunks
  {
    FileTraceSource buffered(f.path);  // index intact: open succeeds
    MmapTraceSource mapped(f.path);
    bool threw_buf = false, threw_map = false;
    const std::uint64_t buf = scalar_served(buffered, threw_buf);
    const std::uint64_t map = scalar_served(mapped, threw_map);
    EXPECT_TRUE(threw_buf);
    EXPECT_TRUE(threw_map);
    // Byte-identity of the failure point: both readers serve exactly the
    // two intact chunks and throw on entering the third.
    EXPECT_EQ(buf, intact);
    EXPECT_EQ(map, intact);
  }
  {
    // Batch path: the batch touching the bad chunk is discarded whole, and
    // the discard point is the same in both readers.
    FileTraceSource buffered(f.path);
    MmapTraceSource mapped(f.path);
    bool threw_buf = false, threw_map = false;
    const std::uint64_t buf = batch_served(buffered, threw_buf);
    const std::uint64_t map = batch_served(mapped, threw_map);
    EXPECT_TRUE(threw_buf);
    EXPECT_TRUE(threw_map);
    EXPECT_EQ(buf, (intact / 7) * 7);
    EXPECT_EQ(map, buf);
  }
}

// --- SoA supporting pieces -------------------------------------------------

TEST(TraceBatch, CacheDecodeBlockMatchesScalarDecode) {
  const CacheConfig configs[] = {
      {.name = "l1", .size_bytes = 32 * 1024, .assoc = 8, .line_bytes = 64},
      {.name = "l2",
       .size_bytes = 2 * 1024 * 1024,
       .assoc = 16,
       .line_bytes = 128},
      {.name = "tiny", .size_bytes = 4 * 1024, .assoc = 1, .line_bytes = 32},
  };
  for (const CacheConfig& cc : configs) {
    Cache cache(cc);
    std::vector<Addr> addrs(InstrBlock::kCapacity);
    std::uint64_t x = 0x2545F4914F6CDD1DULL;
    for (Addr& a : addrs) {  // xorshift64 covers high and low tag bits
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      a = x;
    }
    addrs[0] = 0;              // boundary addresses
    addrs[1] = ~0ULL;
    addrs[2] = cc.line_bytes;  // exactly one line in
    std::vector<Addr> lines(addrs.size()), tags(addrs.size());
    std::vector<std::uint64_t> sets(addrs.size());
    cache.decode_block(addrs.data(), addrs.size(), lines.data(), sets.data(),
                       tags.data());
    for (std::size_t i = 0; i < addrs.size(); ++i) {
      EXPECT_EQ(lines[i], cache.line_addr(addrs[i])) << cc.name << " " << i;
      EXPECT_EQ(sets[i], cache.set_index(addrs[i])) << cc.name << " " << i;
      EXPECT_EQ(tags[i], cache.tag_of(addrs[i])) << cc.name << " " << i;
    }
    // Null lanes skip that output without touching the others.
    std::vector<Addr> only_tags(addrs.size());
    cache.decode_block(addrs.data(), addrs.size(), nullptr, nullptr,
                       only_tags.data());
    for (std::size_t i = 0; i < addrs.size(); ++i)
      EXPECT_EQ(only_tags[i], tags[i]);
  }
}

TEST(TraceBatch, StallSeriesRoundTripsEveryField) {
  StallSeries series;
  std::vector<StallEvent> ref;
  std::uint64_t x = 99;
  for (int i = 0; i < 1'000; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    StallEvent ev;
    ev.start = x % 1'000'000;
    ev.data_ready = ev.start + (x >> 32) % 500;
    ev.commit = ev.start + (x >> 40) % 100;
    ev.estimate = ev.data_ready + static_cast<Cycle>(x % 7) - 3;
    ev.dram = (x & 8) != 0;
    ev.reason = (x & 16) != 0 ? StallReason::kMlpLimit
                              : StallReason::kDependence;
    ref.push_back(ev);
    series.push_back(ev);
  }
  ASSERT_EQ(series.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    const StallEvent got = series[i];
    EXPECT_EQ(got.start, ref[i].start);
    EXPECT_EQ(got.data_ready, ref[i].data_ready);
    EXPECT_EQ(got.commit, ref[i].commit);
    EXPECT_EQ(got.estimate, ref[i].estimate);
    EXPECT_EQ(got.dram, ref[i].dram);
    EXPECT_EQ(got.reason, ref[i].reason);
  }
  series.clear();
  EXPECT_TRUE(series.empty());
}

}  // namespace
}  // namespace mapg
