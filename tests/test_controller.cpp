// Unit tests for PgController timing/accounting: the gate/entry/gated/wake
// phase math for each wake mode, degenerate cases, and statistics.
#include <gtest/gtest.h>

#include "pg/pg_controller.h"
#include "pg/policies.h"

namespace mapg {
namespace {

struct Fixture {
  TechParams tech{};
  PgCircuitConfig pg_cfg{};
  PgCircuit circuit{pg_cfg, tech};
  PolicyContext ctx{PgController::make_context(circuit)};
};

StallEvent dram_stall(Cycle start, Cycle len, Cycle commit_offset) {
  StallEvent ev;
  ev.start = start;
  ev.data_ready = start + len;
  ev.commit = start + commit_offset;
  ev.estimate = ev.data_ready;  // accurate estimate unless a test overrides
  ev.dram = true;
  return ev;
}

TEST(Controller, MakeContextMatchesCircuit) {
  Fixture f;
  EXPECT_EQ(f.ctx.entry_latency, f.circuit.entry_latency_cycles());
  EXPECT_EQ(f.ctx.wakeup_latency, f.circuit.wakeup_latency_cycles());
  EXPECT_EQ(f.ctx.break_even, f.circuit.break_even_cycles());
}

TEST(Controller, DeclinedStallResumesOnData) {
  Fixture f;
  NoGatingPolicy policy(f.ctx);
  PgController c(policy, f.circuit);
  const StallEvent ev = dram_stall(1000, 200, 100);
  EXPECT_EQ(c.on_stall(ev), ev.data_ready);
  EXPECT_EQ(c.stats().eligible_stalls, 1u);
  EXPECT_EQ(c.stats().skipped_events, 1u);
  EXPECT_EQ(c.stats().gated_events, 0u);
  EXPECT_EQ(c.activity().transitions, 0u);
}

TEST(Controller, OracleWakeLandsExactlyOnData) {
  Fixture f;
  OraclePolicy policy(f.ctx);
  PgController c(policy, f.circuit);
  const StallEvent ev = dram_stall(1000, 300, 100);
  EXPECT_EQ(c.on_stall(ev), ev.data_ready);  // zero penalty
  const GatingStats& s = c.stats();
  EXPECT_EQ(s.gated_events, 1u);
  EXPECT_EQ(s.penalty_cycles, 0u);
  // Gated span: [start+entry, data_ready-wakeup).
  EXPECT_EQ(s.activity.gated_cycles,
            300 - f.ctx.entry_latency - f.ctx.wakeup_latency);
  EXPECT_EQ(s.activity.entry_cycles, f.ctx.entry_latency);
  EXPECT_EQ(s.activity.wake_cycles, f.ctx.wakeup_latency);
}

TEST(Controller, EarlyWakeHiddenWhenNoticeSufficient) {
  Fixture f;
  MapgPolicy policy(f.ctx, {});
  PgController c(policy, f.circuit);
  // Commit 100 cycles into a 300-cycle stall: notice = 200 >= wakeup (30),
  // so the wake is fully hidden and resume == data_ready.
  const StallEvent ev = dram_stall(1000, 300, 100);
  EXPECT_EQ(c.on_stall(ev), ev.data_ready);
  EXPECT_EQ(c.stats().penalty_cycles, 0u);
}

TEST(Controller, EarlyWakeTruncatedByCommitPoint) {
  Fixture f;
  MapgPolicy policy(f.ctx, {});
  PgController c(policy, f.circuit);
  // Return time becomes known only 10 cycles before data: wake cannot start
  // earlier, so resume = commit + wakeup_latency (20-cycle penalty).
  StallEvent ev = dram_stall(1000, 300, 290);
  const Cycle resume = c.on_stall(ev);
  EXPECT_EQ(resume, ev.commit + f.ctx.wakeup_latency);
  EXPECT_EQ(c.stats().penalty_cycles,
            f.ctx.wakeup_latency - (ev.data_ready - ev.commit));
}

TEST(Controller, ReactiveWakePaysFullLatency) {
  Fixture f;
  MapgPolicy policy(f.ctx, {.early_wake = false});
  PgController c(policy, f.circuit);
  const StallEvent ev = dram_stall(1000, 300, 100);
  EXPECT_EQ(c.on_stall(ev), ev.data_ready + f.ctx.wakeup_latency);
  EXPECT_EQ(c.stats().penalty_cycles, f.ctx.wakeup_latency);
}

TEST(Controller, TimeoutConsumesStallWithoutGating) {
  Fixture f;
  IdleTimeoutPolicy policy(f.ctx, 500);
  PgController c(policy, f.circuit);
  const StallEvent ev = dram_stall(1000, 200, 100);  // shorter than timeout
  EXPECT_EQ(c.on_stall(ev), ev.data_ready);
  EXPECT_EQ(c.stats().timeout_missed, 1u);
  EXPECT_EQ(c.stats().gated_events, 0u);
  EXPECT_EQ(c.activity().transitions, 0u);
}

TEST(Controller, TimeoutGatesLongStallReactively) {
  Fixture f;
  IdleTimeoutPolicy policy(f.ctx, 64);
  PgController c(policy, f.circuit);
  const StallEvent ev = dram_stall(1000, 300, 100);
  // Entry starts at start+64; wake starts when data arrives.
  EXPECT_EQ(c.on_stall(ev), ev.data_ready + f.ctx.wakeup_latency);
  EXPECT_EQ(c.stats().activity.gated_cycles,
            300 - 64 - f.ctx.entry_latency);
}

TEST(Controller, AbortedEntryWhenDataBeatsIt) {
  Fixture f;
  MapgPolicy policy(f.ctx, {.aggressive = true});  // gates even tiny stalls
  PgController c(policy, f.circuit);
  // Stall of 3 cycles: data arrives during entry (entry = 6 cycles).
  const StallEvent ev = dram_stall(1000, 3, 0);
  const Cycle resume = c.on_stall(ev);
  // wake starts at entry end; resume = entry_end + wakeup.
  EXPECT_EQ(resume,
            ev.start + f.ctx.entry_latency + f.ctx.wakeup_latency);
  const GatingStats& s = c.stats();
  EXPECT_EQ(s.aborted_entries, 1u);
  EXPECT_EQ(s.unprofitable_events, 1u);
  EXPECT_EQ(s.activity.gated_cycles, 0u);
  EXPECT_EQ(s.activity.transitions, 1u);  // overhead still paid
}

TEST(Controller, UnprofitableCountsGatedBelowBreakEven) {
  Fixture f;
  MapgPolicy policy(f.ctx, {.aggressive = true});
  PgController c(policy, f.circuit);
  // Long enough to gate a little, but below break-even.
  const Cycle len = f.ctx.entry_latency + f.ctx.wakeup_latency +
                    f.ctx.break_even / 2;
  c.on_stall(dram_stall(1000, len, 0));
  EXPECT_EQ(c.stats().unprofitable_events, 1u);
  EXPECT_EQ(c.stats().aborted_entries, 0u);
}

TEST(Controller, PhaseCyclesNeverExceedIdleSpan) {
  Fixture f;
  MapgPolicy policy(f.ctx, {.aggressive = true});
  PgController c(policy, f.circuit);
  for (Cycle len : {1u, 5u, 36u, 83u, 200u, 1000u}) {
    PgController fresh(policy, f.circuit);
    const StallEvent ev = dram_stall(5000, len, len / 2);
    const Cycle resume = fresh.on_stall(ev);
    const GatingActivity& a = fresh.activity();
    const Cycle idle_span = resume - ev.start;
    EXPECT_LE(a.gated_cycles + a.entry_cycles + a.wake_cycles, idle_span)
        << "len=" << len;
    EXPECT_GE(resume, ev.data_ready);
  }
}

TEST(Controller, ResetStatsClears) {
  Fixture f;
  OraclePolicy policy(f.ctx);
  PgController c(policy, f.circuit);
  c.on_stall(dram_stall(1000, 300, 100));
  c.reset_stats();
  EXPECT_EQ(c.stats().eligible_stalls, 0u);
  EXPECT_EQ(c.activity().transitions, 0u);
}

TEST(Controller, GatedLengthHistogramFills) {
  Fixture f;
  OraclePolicy policy(f.ctx);
  PgController c(policy, f.circuit);
  c.on_stall(dram_stall(1000, 300, 100));
  c.on_stall(dram_stall(9000, 500, 100));
  EXPECT_EQ(c.stats().gated_len_hist.total(), 2u);
}

}  // namespace
}  // namespace mapg
