// Unit tests for src/common: PRNG determinism and distribution sanity,
// streaming statistics, histograms, tables, and config parsing.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "common/config.h"
#include "common/prng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/types.h"

namespace mapg {
namespace {

TEST(Types, CycleAddSaturates) {
  EXPECT_EQ(cycle_add(5, 7), 12u);
  EXPECT_EQ(cycle_add(kNoCycle, 7), kNoCycle);
  EXPECT_EQ(cycle_add(7, kNoCycle), kNoCycle);
  EXPECT_EQ(cycle_add(kNoCycle - 3, 10), kNoCycle);
}

TEST(Types, CycleSubSatClampsAtZero) {
  EXPECT_EQ(cycle_sub_sat(10, 3), 7u);
  EXPECT_EQ(cycle_sub_sat(3, 10), 0u);
  EXPECT_EQ(cycle_sub_sat(3, 3), 0u);
}

TEST(Prng, DeterministicUnderSameSeed) {
  Prng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Prng, DifferentSeedsDiverge) {
  Prng a(123), b(124);
  int same = 0;
  for (int i = 0; i < 1000; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Prng, ReseedRestartsSequence) {
  Prng a(7);
  const auto first = a.next();
  a.next();
  a.reseed(7);
  EXPECT_EQ(a.next(), first);
}

TEST(Prng, UniformInUnitInterval) {
  Prng p(1);
  double sum = 0;
  for (int i = 0; i < 100000; ++i) {
    const double u = p.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Prng, BelowStaysInRangeAndCoversIt) {
  Prng p(2);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const auto v = p.below(10);
    ASSERT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Prng, BelowOneAlwaysZero) {
  Prng p(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(p.below(1), 0u);
}

TEST(Prng, RangeInclusive) {
  Prng p(4);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = p.range(5, 8);
    ASSERT_GE(v, 5u);
    ASSERT_LE(v, 8u);
    saw_lo |= v == 5;
    saw_hi |= v == 8;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Prng, GeometricMeanMatches) {
  Prng p(5);
  const double prob = 0.2;  // mean failures = (1-p)/p = 4
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(p.geometric(prob));
  EXPECT_NEAR(sum / n, (1 - prob) / prob, 0.1);
}

TEST(Prng, GeometricEdgeCases) {
  Prng p(6);
  EXPECT_EQ(p.geometric(1.0), 0u);
  EXPECT_EQ(p.geometric(1.5), 0u);
}

TEST(Prng, ExponentialMeanMatches) {
  Prng p(7);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += p.exponential(50.0);
  EXPECT_NEAR(sum / n, 50.0, 1.0);
}

TEST(Prng, BoundedParetoStaysInBounds) {
  Prng p(8);
  for (int i = 0; i < 10000; ++i) {
    const auto v = p.bounded_pareto(2, 100, 1.3);
    ASSERT_GE(v, 2u);
    ASSERT_LE(v, 100u);
  }
}

TEST(RunningStat, MeanVarianceMinMax) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.sum(), 0.0);
}

TEST(RunningStat, MergeEqualsSequential) {
  RunningStat all, a, b;
  Prng p(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = p.uniform() * 100;
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmpty) {
  RunningStat a, empty;
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
}

TEST(Histogram, BucketsAndOverflow) {
  Histogram h(0, 100, 10);
  h.add(5);        // bucket 0
  h.add(15);       // bucket 1
  h.add(99.999);   // bucket 9
  h.add(100);      // overflow
  h.add(-1);       // underflow
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(9), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.underflow(), 1u);
}

TEST(Histogram, WeightedAdd) {
  Histogram h(0, 10, 10);
  h.add(3.5, 7);
  EXPECT_EQ(h.bucket_count(3), 7u);
  EXPECT_EQ(h.total(), 7u);
}

TEST(Histogram, QuantileOfUniformMass) {
  Histogram h(0, 100, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
  EXPECT_NEAR(h.quantile(0.0), 0.0, 1.5);
}

TEST(Histogram, MergeAddsCounts) {
  Histogram a(0, 10, 5), b(0, 10, 5);
  a.add(1);
  b.add(1);
  b.add(9);
  a.merge(b);
  EXPECT_EQ(a.total(), 3u);
  EXPECT_EQ(a.bucket_count(0), 2u);
  EXPECT_EQ(a.bucket_count(4), 1u);
}

TEST(LogHistogram, PowerOfTwoBuckets) {
  LogHistogram h;
  h.add(0);
  h.add(1);
  h.add(2);
  h.add(3);
  h.add(1024);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bucket_count(0), 1u);  // {0}
  EXPECT_EQ(h.bucket_count(1), 1u);  // [1,2)
  EXPECT_EQ(h.bucket_count(2), 2u);  // [2,4)
  EXPECT_EQ(h.bucket_count(11), 1u);  // [1024,2048)
  EXPECT_EQ(h.bucket_lo(11), 1024u);
}

TEST(CounterSet, IncrementAndMissing) {
  CounterSet c;
  c.inc("a");
  c.inc("a", 4);
  EXPECT_EQ(c.get("a"), 5u);
  EXPECT_EQ(c.get("missing"), 0u);
}

TEST(Table, PrintAlignsAndCsvQuotes) {
  Table t({"name", "value"});
  t.begin_row().cell("x").cell(1.5, 1);
  t.begin_row().cell("with,comma").cell(std::uint64_t{42});
  std::ostringstream text, csv;
  t.print(text);
  t.print_csv(csv);
  EXPECT_NE(text.str().find("| name"), std::string::npos);
  EXPECT_NE(text.str().find("1.5"), std::string::npos);
  EXPECT_NE(csv.str().find("\"with,comma\",42"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Format, Helpers) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_percent(0.123, 1), "12.3%");
  EXPECT_EQ(format_si(1500.0, 1), "1.5k");
  EXPECT_EQ(format_si(2.5e6, 1), "2.5M");
  EXPECT_EQ(format_si(3.0e9, 0), "3G");
  EXPECT_EQ(format_si(12.0, 0), "12");
}

TEST(KvConfig, ParseTextWithCommentsAndBlanks) {
  KvConfig c;
  std::string err;
  ASSERT_TRUE(c.parse_text("a = 1\n# comment\n\nb= hello # trailing\n", &err))
      << err;
  EXPECT_EQ(c.get_int("a", 0), 1);
  EXPECT_EQ(c.get_or("b", ""), "hello");
}

TEST(KvConfig, ParseTextRejectsMalformed) {
  KvConfig c;
  std::string err;
  EXPECT_FALSE(c.parse_text("novalue\n", &err));
  EXPECT_NE(err.find("line 1"), std::string::npos);
  EXPECT_FALSE(c.parse_text("=v\n", &err));
}

TEST(KvConfig, TypedGettersAndDefaults) {
  KvConfig c;
  c.set("i", "42");
  c.set("d", "2.5");
  c.set("t", "true");
  c.set("f", "off");
  c.set("junk", "xyz");
  EXPECT_EQ(c.get_int("i", 0), 42);
  EXPECT_DOUBLE_EQ(c.get_double("d", 0), 2.5);
  EXPECT_TRUE(c.get_bool("t", false));
  EXPECT_FALSE(c.get_bool("f", true));
  EXPECT_EQ(c.get_int("junk", -1), -1);   // unparsable -> default
  EXPECT_EQ(c.get_int("missing", 7), 7);
  EXPECT_EQ(c.get_uint("i", 0), 42u);
}

TEST(KvConfig, ParseArgsCollectsLeftovers) {
  KvConfig c;
  const char* argv[] = {"prog", "--alpha=1.5", "positional", "beta=2"};
  auto leftovers = c.parse_args(4, argv);
  EXPECT_DOUBLE_EQ(c.get_double("alpha", 0), 1.5);
  EXPECT_EQ(c.get_int("beta", 0), 2);
  ASSERT_EQ(leftovers.size(), 1u);
  EXPECT_EQ(leftovers[0], "positional");
}

}  // namespace
}  // namespace mapg
