// Tests for the shared wakeup arbiter: interval reservation correctness,
// out-of-order request handling, pruning, and multicore integration.
#include <gtest/gtest.h>

#include "multicore/multicore.h"
#include "pg/wake_arbiter.h"

namespace mapg {
namespace {

TEST(WakeArbiter, UnlimitedGrantsImmediately) {
  WakeArbiter a(0);
  EXPECT_EQ(a.reserve(100, 30, 50), 100u);
  EXPECT_EQ(a.reserve(100, 30, 50), 100u);
  EXPECT_EQ(a.reserve(100, 30, 50), 100u);
  EXPECT_EQ(a.delayed_grants(), 0u);
}

TEST(WakeArbiter, SingleSlotSerializes) {
  WakeArbiter a(1);
  EXPECT_EQ(a.reserve(100, 30, 50), 100u);
  EXPECT_EQ(a.reserve(100, 30, 51), 130u);  // back-to-back
  EXPECT_EQ(a.reserve(100, 30, 52), 160u);
  EXPECT_EQ(a.delayed_grants(), 2u);
  EXPECT_EQ(a.delay_cycles(), 30u + 60u);
}

TEST(WakeArbiter, TwoSlotsAllowOneOverlap) {
  WakeArbiter a(2);
  EXPECT_EQ(a.reserve(100, 30, 50), 100u);
  EXPECT_EQ(a.reserve(100, 30, 50), 100u);  // second lane
  EXPECT_EQ(a.reserve(100, 30, 50), 130u);  // both busy
}

TEST(WakeArbiter, NonOverlappingWindowsNeverDelay) {
  WakeArbiter a(1);
  EXPECT_EQ(a.reserve(100, 30, 50), 100u);
  EXPECT_EQ(a.reserve(200, 30, 60), 200u);
  EXPECT_EQ(a.reserve(130, 30, 70), 130u);  // exactly between the two
  EXPECT_EQ(a.delayed_grants(), 0u);
}

TEST(WakeArbiter, OutOfOrderEarlierRequestFindsGap) {
  WakeArbiter a(1);
  // A far-future reservation first, then an earlier one: the earlier one
  // must be granted at its requested time (the gap before the reservation).
  EXPECT_EQ(a.reserve(500, 30, 50), 500u);
  EXPECT_EQ(a.reserve(100, 30, 60), 100u);
  // And one that collides with the 500-window slides past it.
  EXPECT_EQ(a.reserve(490, 30, 70), 530u);
}

TEST(WakeArbiter, GapTooSmallSlidesPast) {
  WakeArbiter a(1);
  a.reserve(100, 30, 0);   // [100,130)
  a.reserve(140, 30, 0);   // [140,170)
  // A 30-cycle window requested at 120 does not fit in [130,140).
  EXPECT_EQ(a.reserve(120, 30, 0), 170u);
  // But a 10-cycle window does.
  EXPECT_EQ(a.reserve(120, 10, 0), 130u);
}

TEST(WakeArbiter, PruneDropsStaleReservations) {
  WakeArbiter a(1);
  for (int i = 0; i < 1000; ++i)
    a.reserve(static_cast<Cycle>(100 + 40 * i), 30,
              static_cast<Cycle>(100 + 40 * i));
  // After a much later floor, everything old is droppable and a request at
  // that floor is granted immediately.
  const Cycle far = 1'000'000;
  EXPECT_EQ(a.reserve(far, 30, far), far);
}

TEST(WakeArbiter, ZeroDurationIsNoop) {
  WakeArbiter a(1);
  a.reserve(100, 30, 0);
  EXPECT_EQ(a.reserve(100, 0, 0), 100u);  // nothing to reserve
}

TEST(WakeArbiter, MulticoreBudgetAddsOverheadButKeepsSavings) {
  MulticoreConfig cfg;
  cfg.num_cores = 8;
  cfg.instructions_per_core = 100'000;
  cfg.warmup_instructions = 30'000;
  const std::vector<WorkloadProfile> mix = {*find_profile("mcf-like")};

  cfg.wake_arbiter_slots = 0;
  const MulticoreResult free_budget = MulticoreSim(cfg).run(mix, "mapg");
  cfg.wake_arbiter_slots = 1;
  const MulticoreResult tight = MulticoreSim(cfg).run(mix, "mapg");

  EXPECT_EQ(free_budget.wake_delayed_grants, 0u);
  EXPECT_GT(tight.wake_delayed_grants, 0u);
  EXPECT_GT(tight.wake_delay_cycles, 0u);
  // Serialized wakeups stretch the schedule...
  EXPECT_GE(tight.makespan, free_budget.makespan);
  // ...but gating itself still works (cores sleep longer while queued).
  EXPECT_GT(tight.avg_gated_fraction(), 0.3);
}

TEST(WakeArbiter, GenerousBudgetMatchesUnlimited) {
  MulticoreConfig cfg;
  cfg.num_cores = 4;
  cfg.instructions_per_core = 100'000;
  cfg.warmup_instructions = 30'000;
  const std::vector<WorkloadProfile> mix = {*find_profile("omnetpp-like")};

  cfg.wake_arbiter_slots = 0;
  const MulticoreResult unlimited = MulticoreSim(cfg).run(mix, "mapg");
  cfg.wake_arbiter_slots = 4;  // one slot per core: never a real constraint
  const MulticoreResult wide = MulticoreSim(cfg).run(mix, "mapg");

  EXPECT_EQ(wide.wake_delayed_grants, 0u);
  EXPECT_EQ(wide.makespan, unlimited.makespan);
  EXPECT_DOUBLE_EQ(wide.total_j(), unlimited.total_j());
}

}  // namespace
}  // namespace mapg
