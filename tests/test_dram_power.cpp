// DRAM low-power states (docs/MEMORY_POWER.md): configuration legality,
// residency conservation, exit-timing composition, the energy model's
// monotonicity, and the coordinated-gating closed form.
#include <gtest/gtest.h>

#include "common/prng.h"
#include "core/sim.h"
#include "mem/dram.h"
#include "pg/dram_coordinator.h"
#include "pg/factory.h"
#include "power/dram_energy.h"

namespace mapg {
namespace {

DramConfig base_config() {
  DramConfig c;
  c.channels = 2;
  c.banks_per_channel = 8;
  c.line_bytes = 64;
  c.row_bytes = 8192;
  c.t_rcd = 41;
  c.t_rp = 41;
  c.t_cl = 41;
  c.t_bl = 15;
  c.t_ras = 105;
  c.t_rfc = 480;
  c.t_refi = 23400;
  return c;
}

DramConfig timeout_config(Cycle pd_timeout = 192, Cycle sr_timeout = 0) {
  DramConfig c = base_config();
  c.power.mode = DramPowerMode::kTimeout;
  c.power.powerdown_timeout = pd_timeout;
  c.power.selfrefresh_timeout = sr_timeout;
  return c;
}

Addr make_line(const DramConfig& c, std::uint32_t channel, std::uint32_t bank,
               std::uint64_t row, std::uint64_t col = 0) {
  std::uint64_t line_no = row;
  line_no = line_no * c.banks_per_channel + bank;
  line_no = line_no * c.lines_per_row() + col;
  line_no = line_no * c.channels + channel;
  return line_no * c.line_bytes;
}

// ---------------------------------------------------------------------------
// Configuration legality
// ---------------------------------------------------------------------------

TEST(DramPowerConfig, OffModeIsAlwaysValid) {
  DramPowerConfig p;  // kOff
  p.t_pd = 0;
  p.t_xp = 0;
  p.t_cke = 0;
  p.t_xs = 0;
  EXPECT_TRUE(p.valid());
  EXPECT_FALSE(p.enabled());
}

TEST(DramPowerConfig, EnabledModesRequireSaneTimings) {
  DramConfig c = timeout_config();
  EXPECT_TRUE(c.valid());

  c = timeout_config();
  c.power.t_pd = 0;  // a state can never be established
  EXPECT_FALSE(c.valid());

  c = timeout_config();
  c.power.t_xp = 0;
  EXPECT_FALSE(c.valid());

  c = timeout_config();
  c.power.t_cke = 0;
  EXPECT_FALSE(c.valid());

  c = timeout_config();
  c.power.t_xs = c.power.t_xp - 1;  // SR exit cheaper than PD exit
  EXPECT_FALSE(c.valid());

  // Escalation must be ordered: self-refresh cannot trigger before
  // power-down when both timers are armed.
  c = timeout_config(/*pd_timeout=*/500, /*sr_timeout=*/100);
  EXPECT_FALSE(c.valid());
  c = timeout_config(/*pd_timeout=*/500, /*sr_timeout=*/500);
  EXPECT_TRUE(c.valid());
  // A disabled timer (0) imposes no ordering.
  c = timeout_config(/*pd_timeout=*/0, /*sr_timeout=*/100);
  EXPECT_TRUE(c.valid());
}

// ---------------------------------------------------------------------------
// Residency conservation
// ---------------------------------------------------------------------------

TEST(DramPower, ResidencyConservationUnderRandomTraffic) {
  // Every accounted channel-cycle lands in exactly one residency class:
  //   active + refresh + powerdown + selfrefresh == channels * elapsed
  // holds as an equality, not a bound.
  const DramConfig cfg = timeout_config(/*pd_timeout=*/150,
                                        /*sr_timeout=*/4000);
  Dram d(cfg);
  Prng prng(7);
  Cycle t = 0;
  for (int i = 0; i < 3000; ++i) {
    const Addr line = prng.below(1ULL << 22) * cfg.line_bytes;
    d.access(line, prng.below(4) == 0, t);
    // Mix short gaps (stay active), medium gaps (power-down), and long
    // gaps (escalate to self-refresh).
    const std::uint64_t kind = prng.below(8);
    t += kind < 5 ? prng.below(100)
                  : kind < 7 ? 200 + prng.below(2000)
                             : 5000 + prng.below(20000);
  }
  const Cycle end = t + 12345;
  d.settle_power(end);
  const DramStats& s = d.stats();
  EXPECT_EQ(s.accounted_cycles(),
            static_cast<std::uint64_t>(end) * cfg.channels);
  EXPECT_GT(s.powerdown_cycles, 0u);
  EXPECT_GT(s.selfrefresh_cycles, 0u);
  EXPECT_GT(s.powerdown_entries, 0u);
  EXPECT_GT(s.selfrefresh_entries, 0u);
}

TEST(DramPower, SettlePowerIsIdempotent) {
  const DramConfig cfg = timeout_config();
  Dram d(cfg);
  d.access(make_line(cfg, 0, 0, 0), false, 1000);
  d.settle_power(50'000);
  const std::uint64_t accounted = d.stats().accounted_cycles();
  d.settle_power(50'000);
  d.settle_power(40'000);  // going backwards must be a no-op too
  EXPECT_EQ(d.stats().accounted_cycles(), accounted);
}

TEST(DramPower, OffModeKeepsCountersAtZero) {
  const DramConfig cfg = base_config();
  Dram d(cfg);
  d.access(make_line(cfg, 0, 0, 0), false, 1000);
  d.settle_power(100'000);
  EXPECT_EQ(d.stats().accounted_cycles(), 0u);
  EXPECT_EQ(d.stats().lowpower_exit_delay, 0u);
}

// ---------------------------------------------------------------------------
// Exit timing
// ---------------------------------------------------------------------------

TEST(DramPower, PowerDownExitPaysTxpAndClosesRows) {
  // Refresh off and the first access at t=0, so the channel has no
  // pre-history: a fresh channel idle since t=0 would otherwise already be
  // parked at its first access (by design — see the residency test).
  DramConfig cfg = timeout_config(/*pd_timeout=*/192);
  cfg.t_refi = 0;
  Dram d(cfg);
  const Cycle t0 = 0;
  d.access(make_line(cfg, 0, 0, 0), false, t0);  // opens row 0
  const Cycle busy_until = t0 + cfg.t_rcd + cfg.t_cl + cfg.t_bl;

  // Arrive long after the timeout: the channel is in power-down, the next
  // command waits tXP, and the entry precharged the bank (row 0 closed, so
  // this same-row access is kClosed, not kHit).
  const Cycle t1 = busy_until + cfg.power.powerdown_timeout +
                   cfg.power.t_pd + cfg.power.t_cke + 500;
  const DramResult r = d.access(make_line(cfg, 0, 0, 0, 1), false, t1);
  EXPECT_EQ(r.outcome, RowBufferOutcome::kClosed);
  EXPECT_EQ(r.completion,
            t1 + cfg.power.t_xp + cfg.t_rcd + cfg.t_cl + cfg.t_bl);
  EXPECT_EQ(d.stats().powerdown_entries, 1u);
  EXPECT_EQ(d.stats().lowpower_exit_delay, cfg.power.t_xp);
}

TEST(DramPower, CkeMinHoldDelaysAnEarlyExit) {
  DramConfig cfg = timeout_config(/*pd_timeout=*/192);
  cfg.t_refi = 0;
  Dram d(cfg);
  const Cycle t0 = 0;
  d.access(make_line(cfg, 0, 0, 0), false, t0);
  const Cycle busy_until = t0 + cfg.t_rcd + cfg.t_cl + cfg.t_bl;
  const Cycle pd_at = busy_until + cfg.power.powerdown_timeout;

  // Arrive right after establishment but before tCKE(min) has elapsed:
  // CKE may not rise yet, so the exit starts at pd_at + tCKE.
  const Cycle t1 = pd_at + cfg.power.t_pd;  // established exactly now
  ASSERT_LT(t1, pd_at + cfg.power.t_cke);
  const DramResult r = d.access(make_line(cfg, 0, 0, 0, 1), false, t1);
  const Cycle first_cmd = pd_at + cfg.power.t_cke + cfg.power.t_xp;
  EXPECT_EQ(r.completion, first_cmd + cfg.t_rcd + cfg.t_cl + cfg.t_bl);
}

TEST(DramPower, ShortGapEntersNoStateAndCostsNothing) {
  DramConfig cfg = timeout_config(/*pd_timeout=*/192);
  cfg.t_refi = 0;
  Dram d(cfg);
  const Cycle t0 = 0;
  d.access(make_line(cfg, 0, 0, 0), false, t0);
  const Cycle busy_until = t0 + cfg.t_rcd + cfg.t_cl + cfg.t_bl;
  // Gap shorter than the timeout: identical timing to the kOff model.
  const Cycle t1 = busy_until + cfg.power.powerdown_timeout - 1;
  const DramResult r = d.access(make_line(cfg, 0, 0, 0, 1), false, t1);
  EXPECT_EQ(r.outcome, RowBufferOutcome::kHit);
  EXPECT_EQ(r.completion, t1 + cfg.t_cl + cfg.t_bl);
  EXPECT_EQ(d.stats().lowpower_exit_delay, 0u);
  EXPECT_EQ(d.stats().powerdown_entries, 0u);
}

// ---------------------------------------------------------------------------
// Energy model
// ---------------------------------------------------------------------------

TEST(DramEnergy, ResidencyNeverIncreasesEnergy) {
  const DramConfig cfg = timeout_config();
  const TechParams tech;
  const DramEnergyParams params;
  const Cycle duration = 1'000'000;

  DramStats active;  // no residency: the always-active baseline
  DramStats parked = active;
  parked.powerdown_cycles = 400'000;
  DramStats deeper = parked;
  deeper.selfrefresh_cycles = 600'000;

  const double e_active =
      compute_dram_energy_j(active, cfg, tech, params, duration);
  const double e_parked =
      compute_dram_energy_j(parked, cfg, tech, params, duration);
  const double e_deeper =
      compute_dram_energy_j(deeper, cfg, tech, params, duration);
  EXPECT_LT(e_parked, e_active);
  EXPECT_LT(e_deeper, e_parked);

  // Coordinated residency saves at exactly the power-down rate.
  const double e_coord = compute_dram_energy_j(active, cfg, tech, params,
                                               duration, 400'000);
  EXPECT_DOUBLE_EQ(e_coord, e_parked);
}

TEST(DramEnergy, SelfRefreshSuppressesControllerRefreshEnergy) {
  const DramConfig cfg = timeout_config();
  const TechParams tech;
  const DramEnergyParams params;
  const Cycle duration = 10 * cfg.t_refi;

  DramStats none;
  DramStats in_sr;
  in_sr.selfrefresh_cycles = 5 * cfg.t_refi;  // half the run, one channel

  const DramEnergyBreakdown b0 =
      compute_dram_energy_breakdown(none, cfg, tech, params, duration);
  const DramEnergyBreakdown b1 =
      compute_dram_energy_breakdown(in_sr, cfg, tech, params, duration);
  // 10 intervals x 2 channels = 20 events baseline; 5 suppressed.
  EXPECT_DOUBLE_EQ(b0.refresh_j, 20 * params.refresh_nj * 1e-9);
  EXPECT_DOUBLE_EQ(b1.refresh_j, 15 * params.refresh_nj * 1e-9);
  EXPECT_GT(b1.lowpower_saved_j, 0.0);
  EXPECT_DOUBLE_EQ(b0.background_j, b1.background_j);
}

TEST(DramEnergy, ParamValidityOrdersTheStatePowers) {
  DramEnergyParams p;
  EXPECT_TRUE(p.valid());
  p.powerdown_w_per_channel = p.background_w_per_channel + 0.01;
  EXPECT_FALSE(p.valid());
  p = DramEnergyParams{};
  p.selfrefresh_w_per_channel = p.powerdown_w_per_channel + 0.01;
  EXPECT_FALSE(p.valid());
}

// ---------------------------------------------------------------------------
// Coordinated closed form
// ---------------------------------------------------------------------------

DramCoordinationParams coord_params() {
  DramCoordinationParams p;
  p.enabled = true;
  p.t_pd = 8;
  p.t_xp = 18;
  p.t_cke = 17;
  p.idle_channels = 1;
  return p;
}

TEST(DramCoordinator, WindowRequiresTheFullChainToFit) {
  const DramCoordinationParams p = coord_params();
  const Cycle gate_start = 1000;
  // Minimum stall that fits: t_pd + t_cke + t_xp after gate_start.
  const Cycle min_ready = gate_start + p.t_pd + p.t_cke + p.t_xp;
  EXPECT_FALSE(
      coordinated_pd_window(p, gate_start, min_ready - 1).eligible);
  const PdWindow w = coordinated_pd_window(p, gate_start, min_ready);
  EXPECT_TRUE(w.eligible);
  EXPECT_EQ(w.established, gate_start + p.t_pd);
  EXPECT_EQ(w.exit_initiate, min_ready - p.t_xp);
  // The tightest eligible window still satisfies the CKE(min) hold.
  EXPECT_EQ(w.per_channel_cycles(), p.t_cke);
}

TEST(DramCoordinator, DisabledOrChannellessNeverEligible) {
  DramCoordinationParams p = coord_params();
  p.enabled = false;
  EXPECT_FALSE(coordinated_pd_window(p, 0, 1'000'000).eligible);
  p = coord_params();
  p.idle_channels = 0;
  EXPECT_FALSE(coordinated_pd_window(p, 0, 1'000'000).eligible);
}

TEST(DramCoordinator, FactorySuffixWrapsAnyPolicy) {
  const PolicyContext ctx{.entry_latency = 6, .wakeup_latency = 30,
                          .break_even = 47};
  const auto plain = make_policy("mapg", ctx);
  ASSERT_NE(plain, nullptr);
  EXPECT_FALSE(plain->coordinate_dram());

  const auto wrapped = make_policy("mapg-dram", ctx);
  ASSERT_NE(wrapped, nullptr);
  EXPECT_TRUE(wrapped->coordinate_dram());
  EXPECT_EQ(wrapped->name(), plain->name() + "-dram");

  // Parameters pass through the suffix to the inner spec.
  const auto with_args = make_policy("mapg-history-dram:ewma=0.25", ctx);
  ASSERT_NE(with_args, nullptr);
  EXPECT_TRUE(with_args->coordinate_dram());

  EXPECT_EQ(make_policy("bogus-dram", ctx), nullptr);
}

// ---------------------------------------------------------------------------
// End to end through the simulator
// ---------------------------------------------------------------------------

SimConfig small_sim(DramPowerMode mode) {
  SimConfig cfg;
  cfg.instructions = 30'000;
  cfg.warmup_instructions = 5'000;
  cfg.mem.dram.power.mode = mode;
  cfg.mem.dram.power.selfrefresh_timeout = 20'000;
  return cfg;
}

WorkloadProfile stall_heavy_profile() {
  WorkloadProfile p;
  p.name = "dram-power-test";
  p.f_load = 0.45;
  p.working_set_bytes = 64ULL << 20;
  p.hot_set_bytes = 16 << 10;
  p.p_cold = 0.6;
  p.p_pointer_chase = 0.5;
  return p;
}

TEST(DramPowerSim, CoordinatedModeAccountsResidencyOnThePgSide) {
  const Simulator sim(small_sim(DramPowerMode::kCoordinated));
  const SimResult r = sim.run(stall_heavy_profile(), "mapg-dram");
  EXPECT_GT(r.gating.dram_pd_windows, 0u);
  EXPECT_GT(r.gating.dram_pd_channel_cycles, 0u);
  EXPECT_EQ(r.dram.powerdown_cycles, 0u);  // DRAM-side machinery is off
  EXPECT_EQ(r.dram.accounted_cycles(), 0u);
  EXPECT_GT(r.energy.dram_lowpower_saved_j, 0.0);

  // Coordination perturbs no core timing: the same spec under kOff runs
  // cycle-identical, and the DRAM energies differ by exactly the saving.
  const Simulator off(small_sim(DramPowerMode::kOff));
  const SimResult r_off = off.run(stall_heavy_profile(), "mapg-dram");
  EXPECT_EQ(r_off.core.cycles, r.core.cycles);
  EXPECT_DOUBLE_EQ(r_off.energy.dram_j,
                   r.energy.dram_j + r.energy.dram_lowpower_saved_j);
}

TEST(DramPowerSim, CoordinatedNeedsBothModeAndPolicySuffix) {
  // Mode without the "-dram" spec: no coordination.
  const Simulator co(small_sim(DramPowerMode::kCoordinated));
  EXPECT_EQ(co.run(stall_heavy_profile(), "mapg").gating.dram_pd_windows, 0u);
  // Spec without the mode: decorator is inert.
  const Simulator off(small_sim(DramPowerMode::kOff));
  EXPECT_EQ(off.run(stall_heavy_profile(), "mapg-dram").gating.dram_pd_windows,
            0u);
}

TEST(DramPowerSim, TimeoutModeResidencyCoversTheMeasuredWindow) {
  const Simulator sim(small_sim(DramPowerMode::kTimeout));
  const SimResult r = sim.run(stall_heavy_profile(), "mapg");
  // settle_power runs before the warmup reset and before the snapshot, so
  // the residency classes tile the measured window exactly.
  EXPECT_EQ(r.dram.accounted_cycles(),
            static_cast<std::uint64_t>(r.core.cycles) *
                sim.config().mem.dram.channels);
  EXPECT_GT(r.dram.powerdown_cycles, 0u);
  EXPECT_EQ(r.gating.dram_pd_windows, 0u);  // no PG-side accounting
}

}  // namespace
}  // namespace mapg
