// Analytic validation: closed-form performance models checked against the
// full simulator.  These tests catch compounding timing errors that unit
// tests of individual components cannot see.
#include <gtest/gtest.h>

#include <vector>

#include "core/sim.h"
#include "trace/trace_io.h"

namespace mapg {
namespace {

// ---------------------------------------------------------------------------
// Model 1: fully serialized pointer chase.
//
// A trace of pure chase loads (dep_dist=1, every load misses a new row)
// executes in
//   cycles ~= N * (1 + L_miss - 1) = N * L_miss
// where, in steady state, every bank holds a stale open row from the
// previous sweep pass, so each access pays the ROW-CONFLICT latency:
//   L_miss = L1 + L2 + MC + (tRP + tRCD + tCL + tBL) + fill return.
// (Serialized accesses, idle bus: no queueing term.)
// ---------------------------------------------------------------------------
TEST(Analytic, SerializedChaseMatchesClosedForm) {
  SimConfig cfg;
  cfg.warmup_instructions = 0;
  const HierarchyConfig& m = cfg.mem;
  const Cycle l_miss = m.l1d.hit_latency + m.l2.hit_latency +
                       m.mc_request_latency + m.dram.t_rp + m.dram.t_rcd +
                       m.dram.t_cl + m.dram.t_bl + m.fill_return_latency;

  // Addresses stride 16 KiB: every access opens a fresh row, cycling the
  // banks of channel 0 (row conflicts after the first lap).
  const int n = 2000;
  std::vector<Instr> prog;
  prog.reserve(n);
  for (int i = 0; i < n; ++i)
    prog.push_back(Instr{.op = OpClass::kLoad,
                         .addr = (1ULL << 24) + static_cast<Addr>(i) * 16384,
                         .dep_dist = 1});

  const Simulator sim(cfg);
  VectorTraceSource trace(prog);
  NoGatingPolicy policy(sim.policy_context());
  const SimResult r = sim.run(trace, "chase", policy);

  const double expected = static_cast<double>(n) * static_cast<double>(l_miss);
  const double actual = static_cast<double>(r.core.cycles);
  // Refresh windows and row-buffer effects perturb by a few percent.
  EXPECT_NEAR(actual / expected, 1.0, 0.05);
}

// ---------------------------------------------------------------------------
// Model 2: MAPG energy on the serialized chase.
//
// With stalls of length S = L_miss - 1 (the chase consumer blocks one cycle
// after issue), every stall is gated; the gated portion per stall is
// S - entry - wakeup, so the leakage saved is predictable in closed form:
//   E_saved ~= n_stalls * (S - entry - wake) * P_savable / f
//   E_ovh    = n_stalls * E_transition
// ---------------------------------------------------------------------------
TEST(Analytic, MapgSavingsMatchClosedFormOnChase) {
  SimConfig cfg;
  cfg.warmup_instructions = 0;
  const HierarchyConfig& m = cfg.mem;
  const Cycle l_miss = m.l1d.hit_latency + m.l2.hit_latency +
                       m.mc_request_latency + m.dram.t_rp + m.dram.t_rcd +
                       m.dram.t_cl + m.dram.t_bl + m.fill_return_latency;
  const Cycle stall_len = l_miss - 1;

  const int n = 2000;
  std::vector<Instr> prog;
  for (int i = 0; i < n; ++i)
    prog.push_back(Instr{.op = OpClass::kLoad,
                         .addr = (1ULL << 24) + static_cast<Addr>(i) * 16384,
                         .dep_dist = 1});

  const Simulator sim(cfg);
  const PolicyContext ctx = sim.policy_context();
  ASSERT_GT(stall_len, ctx.entry_latency + ctx.wakeup_latency +
                           ctx.break_even);  // every stall profitable

  VectorTraceSource trace(prog);
  MapgPolicy policy(ctx, {});
  const SimResult r = sim.run(trace, "chase", policy);

  // All n stalls gated (the very first may differ due to cold start).
  EXPECT_GE(r.gating.gated_events + 1u, static_cast<std::uint64_t>(n));
  const double expected_gated_per_stall = static_cast<double>(
      stall_len - ctx.entry_latency - ctx.wakeup_latency);
  const double actual_gated_per_stall =
      static_cast<double>(r.gating.activity.gated_cycles) /
      static_cast<double>(r.gating.gated_events);
  EXPECT_NEAR(actual_gated_per_stall / expected_gated_per_stall, 1.0, 0.05);

  // Energy: saved leakage matches the gated time; overhead matches events.
  const PgCircuit circuit(cfg.pg, cfg.tech);
  EXPECT_NEAR(r.energy.pg_overhead_j,
              circuit.overhead_energy_j() *
                  static_cast<double>(r.gating.gated_events),
              1e-12);
  const double saved_expected =
      cfg.tech.savable_leakage_w() *
      cfg.tech.cycles_to_seconds(
          static_cast<double>(r.gating.activity.gated_cycles));
  EXPECT_NEAR(r.energy.core_leak_saved_j(), saved_expected, 1e-12);
}

// ---------------------------------------------------------------------------
// Model 3: dense streaming with loose dependencies approaches the
// bandwidth bound.
//
// Pure loads sweeping sequential 8 B elements with no consumers: one DRAM
// line fill per 8 loads, almost all row hits, two channels.  The core can
// never beat 1 instruction/cycle, and the memory system can never beat one
// line per (tBL / channels) cycles; with loose deps the simulator should
// land between those bounds, far above the serialized case.
// ---------------------------------------------------------------------------
TEST(Analytic, StreamingThroughputBetweenCoreAndBandwidthBounds) {
  SimConfig cfg;
  cfg.warmup_instructions = 0;
  cfg.core.mlp_window = 16;
  const int n = 50000;
  std::vector<Instr> prog;
  for (int i = 0; i < n; ++i)
    prog.push_back(Instr{.op = OpClass::kLoad,
                         .addr = (1ULL << 26) + static_cast<Addr>(i) * 8,
                         .dep_dist = 0});

  const Simulator sim(cfg);
  VectorTraceSource trace(prog);
  NoGatingPolicy policy(sim.policy_context());
  const SimResult r = sim.run(trace, "stream", policy);

  const double cycles = static_cast<double>(r.core.cycles);
  // Core bound: n cycles (1 IPC).
  EXPECT_GE(cycles, static_cast<double>(n) * 0.999);
  // Bandwidth bound: (n/8) line fills, tBL each, 2 channels.
  const double bw_bound = static_cast<double>(n) / 8.0 *
                          static_cast<double>(cfg.mem.dram.t_bl) / 2.0;
  (void)bw_bound;  // tBL*lines/2 = 46.9k < n: the core bound dominates here
  // The stream must run at least 5x faster than serialized misses would.
  const double serialized = static_cast<double>(n) / 8.0 * 180.0;
  EXPECT_LT(cycles, serialized / 5.0);
  // And the row-hit rate must be near-perfect for a dense sweep.
  EXPECT_GT(r.dram.row_hit_rate(), 0.95);
}

// ---------------------------------------------------------------------------
// Model 4: oracle gated time equals total profitable stall time minus the
// per-event entry+wakeup tax (exact identity, not an approximation).
// ---------------------------------------------------------------------------
TEST(Analytic, OracleGatedCyclesIdentity) {
  SimConfig cfg;
  cfg.instructions = 200'000;
  cfg.warmup_instructions = 50'000;
  const Simulator sim(cfg);
  const SimResult r = sim.run(*find_profile("omnetpp-like"), "oracle");
  const PolicyContext ctx = sim.policy_context();

  // Every gated event contributes exactly (entry + wakeup) non-gated
  // cycles inside its stall, and oracle events are never degenerate.
  const std::uint64_t tax =
      r.gating.gated_events * (ctx.entry_latency + ctx.wakeup_latency);
  std::uint64_t profitable_stall_cycles = 0;
  // Reconstruct from the recorded histogram: every stall above the oracle
  // threshold was gated.
  const auto& h = r.core.dram_stall_hist;
  const double threshold = static_cast<double>(
      ctx.entry_latency + ctx.wakeup_latency + ctx.break_even);
  (void)threshold;
  // The identity we can assert exactly: gated + tax <= total stall cycles.
  profitable_stall_cycles = r.core.stall_cycles_dram +
                            r.core.stall_cycles_other;
  EXPECT_EQ(r.gating.activity.entry_cycles + r.gating.activity.wake_cycles,
            tax);
  EXPECT_LE(r.gating.activity.gated_cycles + tax, profitable_stall_cycles);
  // And oracle wastes nothing: no penalties, no degenerate events.
  EXPECT_EQ(r.gating.penalty_cycles, 0u);
  EXPECT_EQ(r.gating.aborted_entries, 0u);
  EXPECT_EQ(r.gating.unprofitable_events, 0u);
  (void)h;
}

}  // namespace
}  // namespace mapg
