// Differential suite for src/replay: record-once/replay-per-policy must be
// bit-identical to direct simulation wherever it claims success, and must
// bail out (never silently diverge) wherever a policy takes a wake penalty.
//
// The equivalence argument (docs/MODEL.md §4b): the stall-resolution resume
// cycle is the only channel from a gating policy into core/memory timing, so
// a policy whose every window resolves with resume == data_ready reproduces
// the `none` reference's timing exactly and only the gating/energy books
// differ.  Wake-exact policies (oracle + the thresholded MAPG early-wake
// family, any alpha) satisfy that on every window; reactive-wake policies
// (idle-timeout) and threshold-free gating (mapg-aggressive) do not.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "exec/engine.h"
#include "exec/serialize.h"
#include "obs/obs.h"
#include "replay/replay.h"
#include "trace/profile.h"

namespace mapg {
namespace {

SimConfig small_config(std::uint64_t seed) {
  SimConfig cfg;
  cfg.instructions = 30'000;
  cfg.warmup_instructions = 6'000;
  cfg.run_seed = seed;
  return cfg;
}

std::string dump(const SimResult& r) { return result_to_json(r).dump(); }

const char* const kWorkloads[] = {"mcf-like", "libquantum-like",
                                  "omnetpp-like"};

TEST(Replay, ReferenceIsBitIdenticalToDirectNoneRun) {
  const SimConfig cfg = small_config(42);
  for (const char* w : kWorkloads) {
    const WorkloadProfile* p = find_profile(w);
    ASSERT_NE(p, nullptr);
    const StallTimeline tl = record_timeline(cfg, *p);
    EXPECT_EQ(dump(*tl.reference), dump(Simulator(cfg).run(*p, "none"))) << w;
    // The trace buffer holds exactly the instructions the run consumed.
    ASSERT_NE(tl.record.trace, nullptr);
    EXPECT_EQ(tl.record.trace->size(),
              cfg.warmup_instructions + cfg.instructions);
  }
}

TEST(Replay, WakeExactPoliciesReplayJsonIdentical) {
  // Policies whose every gated window wakes at data_ready: replay must
  // succeed and serialize identically to a direct simulation — across
  // workloads and seeds, including the alpha-sensitivity variants.
  const char* const kEligible[] = {"oracle",          "mapg",
                                   "mapg:alpha=0.25", "mapg:alpha=4.0",
                                   "mapg-unfiltered", "mapg-multimode",
                                   "mapg-hybrid"};
  for (const std::uint64_t seed : {1ull, 42ull, 1337ull}) {
    const SimConfig cfg = small_config(seed);
    for (const char* w : kWorkloads) {
      const WorkloadProfile* p = find_profile(w);
      ASSERT_NE(p, nullptr);
      const StallTimeline tl = record_timeline(cfg, *p);
      for (const char* spec : kEligible) {
        const std::string what = std::string(w) + " / " + spec +
                                 " seed=" + std::to_string(seed);
        const ReplayOutcome out = replay_policy(tl, spec);
        ASSERT_TRUE(out.ok) << what;
        // Every recorded window (warmup and measured) was replayed.
        EXPECT_EQ(out.windows, tl.record.warmup_stalls.size() +
                                   tl.record.stalls.size())
            << what;
        EXPECT_EQ(dump(out.result), dump(Simulator(cfg).run(*p, spec)))
            << what;
      }
    }
  }
}

TEST(Replay, PenalizedPoliciesBailOut) {
  // Reactive wake (idle-timeout) penalizes every gated window; gating
  // without the residual threshold (mapg-aggressive) penalizes short
  // windows.  Both must refuse to replay rather than return shifted timing.
  const SimConfig cfg = small_config(42);
  const WorkloadProfile* p = find_profile("mcf-like");
  ASSERT_NE(p, nullptr);
  const StallTimeline tl = record_timeline(cfg, *p);
  for (const char* spec :
       {"idle-timeout:64", "idle-timeout-early:64", "mapg-aggressive"}) {
    const ReplayOutcome out = replay_policy(tl, spec);
    EXPECT_FALSE(out.ok) << spec;
    EXPECT_GE(out.windows, 1u) << spec;  // bailed AT the penalized window
  }
}

TEST(Replay, NoneReplaysAsItself) {
  const SimConfig cfg = small_config(7);
  const WorkloadProfile* p = find_profile("omnetpp-like");
  ASSERT_NE(p, nullptr);
  const StallTimeline tl = record_timeline(cfg, *p);
  const ReplayOutcome out = replay_policy(tl, "none");
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(dump(out.result), dump(*tl.reference));
}

TEST(Replay, UnknownSpecThrows) {
  const SimConfig cfg = small_config(1);
  const StallTimeline tl = record_timeline(cfg, *find_profile("mcf-like"));
  EXPECT_THROW(replay_policy(tl, "not-a-policy"), std::invalid_argument);
}

TEST(Replay, ObsCountersAdvance) {
  auto& reg = obs::MetricsRegistry::instance();
  const std::uint64_t cells0 = reg.counter("sim.replay.cells").value();
  const std::uint64_t tls0 = reg.counter("sim.replay.timelines").value();
  const std::uint64_t fb0 = reg.counter("sim.replay.full_fallbacks").value();

  const SimConfig cfg = small_config(3);
  const StallTimeline tl = record_timeline(cfg, *find_profile("mcf-like"));
  ASSERT_TRUE(replay_policy(tl, "mapg").ok);
  ASSERT_FALSE(replay_policy(tl, "idle-timeout:64").ok);

  EXPECT_EQ(reg.counter("sim.replay.timelines").value(), tls0 + 1);
  EXPECT_EQ(reg.counter("sim.replay.cells").value(), cells0 + 1);
  // Fallback accounting moved to the callers (engine / serve layers),
  // which know whether the failed replay became a checkpoint resume or a
  // full from-zero fallback; replay_policy itself reports failure only
  // through its return value.
  EXPECT_EQ(reg.counter("sim.replay.full_fallbacks").value(), fb0);
}

TEST(Replay, EngineSweepWithFallbacksIsByteIdentical) {
  // Engine-level contract: a sweep containing BOTH replay-eligible and
  // deliberately penalized policies serializes cell-for-cell identically
  // with the replay engine and the direct engine, and the replay engine
  // actually exercised both paths.
  SweepSpec sweep;
  sweep.base = small_config(42);
  sweep.workloads = {*find_profile("mcf-like"), *find_profile("omnetpp-like")};
  sweep.policy_specs = {"none", "mapg", "idle-timeout:64", "mapg-aggressive",
                        "oracle"};

  ExecOptions direct_opt;
  direct_opt.use_disk_cache = false;
  direct_opt.use_replay = false;
  ExperimentEngine direct(direct_opt);
  const SweepResult a = direct.run_sweep(sweep);

  ExecOptions replay_opt = direct_opt;
  replay_opt.use_replay = true;
  ExperimentEngine replay(replay_opt);
  const SweepResult b = replay.run_sweep(sweep);

  for (std::size_t wi = 0; wi < sweep.workloads.size(); ++wi)
    for (std::size_t pi = 0; pi < sweep.policy_specs.size(); ++pi) {
      const std::string what = sweep.workloads[wi].name + " / " +
                               sweep.policy_specs[pi];
      const JobOutcome& x = a.at(0, wi, pi);
      const JobOutcome& y = b.at(0, wi, pi);
      ASSERT_TRUE(x.ok && y.ok) << what;
      EXPECT_EQ(dump(*x.result), dump(*y.result)) << what;
    }

  EXPECT_EQ(replay.stats().timelines_recorded, sweep.workloads.size());
  EXPECT_GT(replay.stats().jobs_replayed, 0u);
  EXPECT_GT(replay.stats().replay_fallbacks, 0u);
  // Fallback cells re-simulate over the shared trace buffer; together with
  // the reference recordings they account for every non-replayed cell.
  EXPECT_EQ(replay.stats().jobs_run + replay.stats().jobs_replayed,
            sweep.workloads.size() * sweep.policy_specs.size());
  EXPECT_EQ(direct.stats().jobs_replayed, 0u);
}

}  // namespace
}  // namespace mapg
