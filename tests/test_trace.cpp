// Unit tests for src/trace: generator determinism, profile shape, mix
// convergence, dependency distances, and trace file round-trips.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <sstream>

#include "trace/generator.h"
#include "trace/instr.h"
#include "trace/profile.h"
#include "trace/trace_io.h"

namespace mapg {
namespace {

TEST(Profiles, TwelveBuiltinsWithUniqueNames) {
  const auto& profiles = builtin_profiles();
  EXPECT_EQ(profiles.size(), 12u);
  for (std::size_t i = 0; i < profiles.size(); ++i)
    for (std::size_t j = i + 1; j < profiles.size(); ++j)
      EXPECT_NE(profiles[i].name, profiles[j].name);
}

TEST(Profiles, FindByName) {
  EXPECT_NE(find_profile("mcf-like"), nullptr);
  EXPECT_NE(find_profile("gamess-like"), nullptr);
  EXPECT_EQ(find_profile("not-a-profile"), nullptr);
}

TEST(Profiles, MixFractionsSumBelowOne) {
  for (const auto& p : builtin_profiles()) {
    const double sum =
        p.f_load + p.f_store + p.f_branch + p.f_mul + p.f_div + p.f_fp;
    EXPECT_LT(sum, 1.0) << p.name;
    EXPECT_GT(p.f_load, 0.0) << p.name;
    EXPECT_LE(p.p_stream + p.p_cold, 1.0) << p.name;
    EXPECT_LE(p.hot_set_bytes, p.working_set_bytes) << p.name;
  }
}

TEST(Profiles, RepresentativeSubset) {
  const auto reps = representative_profiles();
  ASSERT_EQ(reps.size(), 4u);
  EXPECT_EQ(reps[0].name, "mcf-like");
}

TEST(Generator, DeterministicAcrossInstances) {
  const WorkloadProfile* p = find_profile("mcf-like");
  ASSERT_NE(p, nullptr);
  TraceGenerator a(*p, 5), b(*p, 5);
  Instr ia, ib;
  for (int i = 0; i < 20000; ++i) {
    ASSERT_TRUE(a.next(ia));
    ASSERT_TRUE(b.next(ib));
    ASSERT_EQ(ia.op, ib.op);
    ASSERT_EQ(ia.addr, ib.addr);
    ASSERT_EQ(ia.dep_dist, ib.dep_dist);
  }
}

TEST(Generator, ResetReplaysIdentically) {
  const WorkloadProfile* p = find_profile("gcc-like");
  ASSERT_NE(p, nullptr);
  TraceGenerator g(*p, 9);
  std::vector<Instr> first;
  Instr instr;
  for (int i = 0; i < 5000; ++i) {
    g.next(instr);
    first.push_back(instr);
  }
  g.reset();
  for (int i = 0; i < 5000; ++i) {
    g.next(instr);
    EXPECT_EQ(instr.addr, first[i].addr);
    EXPECT_EQ(instr.op, first[i].op);
  }
}

TEST(Generator, RunSeedChangesStream) {
  const WorkloadProfile* p = find_profile("mcf-like");
  TraceGenerator a(*p, 1), b(*p, 2);
  Instr ia, ib;
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    a.next(ia);
    b.next(ib);
    if (ia.op == ib.op && ia.addr == ib.addr) ++same;
  }
  EXPECT_LT(same, 700);  // mostly different draws
}

TEST(Generator, MixConvergesToProfile) {
  const WorkloadProfile* p = find_profile("lbm-like");
  TraceGenerator g(*p, 3);
  std::array<int, kNumOpClasses> counts{};
  Instr instr;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    g.next(instr);
    ++counts[static_cast<std::size_t>(instr.op)];
  }
  auto frac = [&](OpClass c) {
    return static_cast<double>(counts[static_cast<std::size_t>(c)]) / n;
  };
  EXPECT_NEAR(frac(OpClass::kLoad), p->f_load, 0.01);
  EXPECT_NEAR(frac(OpClass::kStore), p->f_store, 0.01);
  EXPECT_NEAR(frac(OpClass::kBranch), p->f_branch, 0.01);
  EXPECT_NEAR(frac(OpClass::kDiv), p->f_div, 0.005);
}

TEST(Generator, AddressesStayInWorkingSetAndAligned) {
  for (const auto& p : builtin_profiles()) {
    TraceGenerator g(p, 11);
    Instr instr;
    for (int i = 0; i < 20000; ++i) {
      g.next(instr);
      if (instr.op == OpClass::kLoad || instr.op == OpClass::kStore) {
        ASSERT_LT(instr.addr, p.working_set_bytes) << p.name;
        ASSERT_EQ(instr.addr % 8, 0u) << p.name;
      } else {
        ASSERT_EQ(instr.addr, kNoAddr);
      }
    }
  }
}

TEST(Generator, DepDistWithinBoundsAndLoadsOnly) {
  const WorkloadProfile* p = find_profile("omnetpp-like");
  TraceGenerator g(*p, 13);
  Instr instr;
  bool saw_dep = false;
  for (int i = 0; i < 50000; ++i) {
    g.next(instr);
    if (instr.op != OpClass::kLoad) {
      ASSERT_EQ(instr.dep_dist, 0u);
      continue;
    }
    ASSERT_LE(instr.dep_dist, p->dep_dist_max);
    saw_dep |= instr.dep_dist > 0;
  }
  EXPECT_TRUE(saw_dep);
}

TEST(Generator, PointerChaseForcesDepDistOne) {
  WorkloadProfile p = *find_profile("mcf-like");
  p.p_pointer_chase = 1.0;  // every load chases
  TraceGenerator g(p, 17);
  Instr instr;
  for (int i = 0; i < 20000; ++i) {
    g.next(instr);
    if (instr.op == OpClass::kLoad) {
      ASSERT_EQ(instr.dep_dist, 1u);
    }
  }
}

TEST(Generator, StreamsAdvanceSequentially) {
  WorkloadProfile p = *find_profile("libquantum-like");
  p.p_stream = 1.0;
  p.p_cold = 0.0;
  p.num_streams = 1;
  p.f_load = 1.0;
  p.f_store = p.f_branch = p.f_mul = p.f_div = p.f_fp = 0.0;
  TraceGenerator g(p, 19);
  Instr a, b;
  g.next(a);
  for (int i = 0; i < 1000; ++i) {
    g.next(b);
    // Single stream, pure loads: consecutive addresses advance by the
    // stride (mod wraparound).
    if (b.addr > a.addr) {
      ASSERT_EQ(b.addr - a.addr, p.stream_stride_bytes & ~7ULL);
    }
    a = b;
  }
}

TEST(PhasedGenerator, AlternatesProfilesOnSchedule) {
  const WorkloadProfile* a = find_profile("mcf-like");
  const WorkloadProfile* b = find_profile("gamess-like");
  PhasedTraceGenerator g(*a, *b, 100, 3);
  Instr instr;
  EXPECT_EQ(g.current_phase_name(), "mcf-like");
  for (int i = 0; i < 100; ++i) g.next(instr);
  g.next(instr);  // 101st instruction crosses into phase b
  EXPECT_EQ(g.current_phase_name(), "gamess-like");
  EXPECT_EQ(g.phase_switches(), 1u);
  for (int i = 0; i < 100; ++i) g.next(instr);
  EXPECT_EQ(g.current_phase_name(), "mcf-like");
  EXPECT_EQ(g.phase_switches(), 2u);
}

TEST(PhasedGenerator, ResetReplaysIdentically) {
  const WorkloadProfile* a = find_profile("mcf-like");
  const WorkloadProfile* b = find_profile("lbm-like");
  PhasedTraceGenerator g(*a, *b, 500, 7);
  std::vector<Instr> first;
  Instr instr;
  for (int i = 0; i < 3000; ++i) {
    g.next(instr);
    first.push_back(instr);
  }
  g.reset();
  for (int i = 0; i < 3000; ++i) {
    g.next(instr);
    ASSERT_EQ(instr.addr, first[i].addr);
    ASSERT_EQ(instr.op, first[i].op);
  }
}

TEST(PhasedGenerator, MixReflectsBothPhases) {
  // mcf loads 32%, gamess loads 24%: a balanced phased trace lands between.
  const WorkloadProfile* a = find_profile("mcf-like");
  const WorkloadProfile* b = find_profile("gamess-like");
  PhasedTraceGenerator g(*a, *b, 1000, 11);
  Instr instr;
  int loads = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    g.next(instr);
    if (instr.op == OpClass::kLoad) ++loads;
  }
  const double frac = static_cast<double>(loads) / n;
  EXPECT_GT(frac, 0.25);
  EXPECT_LT(frac, 0.31);
}

TEST(VectorSource, ServesAndResets) {
  std::vector<Instr> v(3);
  v[0].op = OpClass::kAlu;
  v[1].op = OpClass::kLoad;
  v[1].addr = 64;
  v[2].op = OpClass::kStore;
  v[2].addr = 128;
  VectorTraceSource src(v);
  Instr instr;
  int n = 0;
  while (src.next(instr)) ++n;
  EXPECT_EQ(n, 3);
  EXPECT_FALSE(src.next(instr));
  src.reset();
  ASSERT_TRUE(src.next(instr));
  EXPECT_EQ(instr.op, OpClass::kAlu);
}

TEST(LimitedSource, CapsAndResets) {
  const WorkloadProfile* p = find_profile("gcc-like");
  TraceGenerator g(*p, 23);
  LimitedTraceSource lim(g, 100);
  Instr instr;
  int n = 0;
  while (lim.next(instr)) ++n;
  EXPECT_EQ(n, 100);
  lim.reset();
  n = 0;
  while (lim.next(instr)) ++n;
  EXPECT_EQ(n, 100);
}

TEST(TraceIo, RoundTripThroughStream) {
  const WorkloadProfile* p = find_profile("mcf-like");
  TraceGenerator g(*p, 29);
  std::stringstream buf;
  EXPECT_EQ(write_trace(buf, g, 5000), 5000u);

  std::vector<Instr> loaded;
  std::string err;
  ASSERT_TRUE(read_trace(buf, loaded, &err)) << err;
  ASSERT_EQ(loaded.size(), 5000u);

  g.reset();
  Instr instr;
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    g.next(instr);
    ASSERT_EQ(loaded[i].op, instr.op);
    ASSERT_EQ(loaded[i].addr, instr.addr);
    ASSERT_EQ(loaded[i].dep_dist, instr.dep_dist);
  }
}

TEST(TraceIo, ShortSourceRewritesCount) {
  std::vector<Instr> v(10);
  VectorTraceSource src(v);
  std::stringstream buf;
  EXPECT_EQ(write_trace(buf, src, 100), 10u);  // asked 100, source had 10
  std::vector<Instr> loaded;
  ASSERT_TRUE(read_trace(buf, loaded));
  EXPECT_EQ(loaded.size(), 10u);
}

TEST(TraceIo, RejectsBadMagic) {
  std::stringstream buf;
  buf << "NOTATRACE-------";
  std::vector<Instr> loaded;
  std::string err;
  EXPECT_FALSE(read_trace(buf, loaded, &err));
  EXPECT_EQ(err, "bad magic");
}

TEST(TraceIo, RejectsTruncatedBody) {
  const WorkloadProfile* p = find_profile("gcc-like");
  TraceGenerator g(*p, 31);
  std::stringstream buf;
  write_trace(buf, g, 100);
  std::string data = buf.str();
  data.resize(data.size() - 5);  // chop mid-record
  std::stringstream cut(data);
  std::vector<Instr> loaded;
  std::string err;
  EXPECT_FALSE(read_trace(cut, loaded, &err));
  EXPECT_NE(err.find("truncated"), std::string::npos);
}

TEST(TraceIo, FileRoundTrip) {
  const WorkloadProfile* p = find_profile("astar-like");
  TraceGenerator g(*p, 37);
  const std::string path = ::testing::TempDir() + "mapg_trace_test.bin";
  std::string err;
  ASSERT_TRUE(write_trace_file(path, g, 1000, &err)) << err;
  std::vector<Instr> loaded;
  ASSERT_TRUE(read_trace_file(path, loaded, &err)) << err;
  EXPECT_EQ(loaded.size(), 1000u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mapg
