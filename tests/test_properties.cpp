// Property-based tests (parameterized sweeps) over workloads, policies, and
// circuit parameters: invariants that must hold for EVERY configuration.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/sim.h"
#include "exec/runner.h"
#include "power/pg_circuit.h"

namespace mapg {
namespace {

SimConfig fast_config() {
  SimConfig cfg;
  cfg.instructions = 200'000;
  cfg.warmup_instructions = 50'000;
  return cfg;
}

// ---------------------------------------------------------------------------
// For every (workload, policy) pair: accounting invariants.
// ---------------------------------------------------------------------------
class WorkloadPolicyProps
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {
};

TEST_P(WorkloadPolicyProps, AccountingInvariantsHold) {
  const auto& [workload, spec] = GetParam();
  const WorkloadProfile* p = find_profile(workload);
  ASSERT_NE(p, nullptr);
  ExperimentRunner runner(fast_config());
  const Comparison c = runner.compare_one(*p, spec);
  const SimResult& r = c.result;

  // Cycle conservation.
  EXPECT_EQ(r.core.busy_cycles() + r.core.idle_cycles(), r.core.cycles);
  // Exact: every idle cycle is in exactly one gating phase or explicitly
  // idle-ungated (waiting out a gate timeout, or a skipped/missed stall).
  const GatingActivity& a = r.gating.activity;
  EXPECT_EQ(a.gated_cycles + a.entry_cycles + a.wake_cycles +
                r.gating.idle_ungated_cycles,
            r.core.idle_cycles());

  // Penalty agreement between the core and the controller.
  EXPECT_EQ(r.core.penalty_cycles, r.gating.penalty_cycles);

  // Event accounting: every eligible stall is classified exactly once.
  EXPECT_EQ(r.gating.eligible_stalls,
            r.gating.gated_events + r.gating.skipped_events +
                r.gating.timeout_missed);
  EXPECT_EQ(r.gating.eligible_stalls,
            r.core.stalls_dram + r.core.stalls_other);
  EXPECT_EQ(a.transitions, r.gating.gated_events);

  // Energy composition: total equals the sum of its parts; all parts
  // non-negative; leakage saved never exceeds the baseline leakage.
  const EnergyBreakdown& e = r.energy;
  EXPECT_NEAR(e.total_j(),
              e.dynamic_j + e.core_leak_j + e.ungated_leak_j +
                  e.idle_clock_j + e.pg_overhead_j + e.dram_j,
              1e-15);
  EXPECT_GT(e.dram_j, 0.0);
  EXPECT_GE(e.dynamic_j, 0.0);
  EXPECT_GE(e.core_leak_j, 0.0);
  EXPECT_GE(e.idle_clock_j, 0.0);
  EXPECT_GE(e.pg_overhead_j, 0.0);
  EXPECT_LE(e.core_leak_saved_j(), e.core_leak_baseline_j + 1e-15);

  // A policy can only slow execution down, never speed it up — up to the
  // DRAM alignment noise that warmup-phase gating introduces (shifted
  // request timing changes bank/refresh interleaving by a fraction of a
  // percent in either direction).
  EXPECT_GE(c.runtime_overhead, -0.005);

  // Gating requires idle time: gated fraction bounded by idle fraction.
  EXPECT_LE(static_cast<double>(a.gated_cycles),
            static_cast<double>(r.core.idle_cycles()) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloadsAllPolicies, WorkloadPolicyProps,
    ::testing::Combine(
        ::testing::Values("mcf-like", "libquantum-like", "gcc-like",
                          "gamess-like"),
        ::testing::Values("none", "idle-timeout:64", "oracle", "mapg",
                          "mapg-aggressive", "mapg-noearly",
                          "mapg-unfiltered", "mapg-history",
                          "mapg-multimode")),
    [](const auto& info) {
      std::string n = std::get<0>(info.param) + "_" + std::get<1>(info.param);
      for (char& c : n)
        if (c == '-' || c == ':') c = '_';
      return n;
    });

// ---------------------------------------------------------------------------
// For every workload: ordering properties between policies.
// ---------------------------------------------------------------------------
class WorkloadProps : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadProps, OracleDominatesAndMapgTracksIt) {
  const WorkloadProfile* p = find_profile(GetParam());
  ASSERT_NE(p, nullptr);
  ExperimentRunner runner(fast_config());
  const Comparison oracle = runner.compare_one(*p, "oracle");
  const Comparison mapg = runner.compare_one(*p, "mapg");

  // Oracle never loses energy and never loses time.
  EXPECT_GE(oracle.net_leakage_savings, -1e-12);
  EXPECT_NEAR(oracle.runtime_overhead, 0.0, 1e-12);
  // Oracle bounds MAPG's net leakage savings.
  EXPECT_GE(oracle.net_leakage_savings, mapg.net_leakage_savings - 1e-9);
  // MAPG stays within 1% runtime of the baseline on every workload.
  EXPECT_LT(mapg.runtime_overhead, 0.01);
}

TEST_P(WorkloadProps, EarlyWakeNeverWorseThanReactive) {
  const WorkloadProfile* p = find_profile(GetParam());
  ASSERT_NE(p, nullptr);
  ExperimentRunner runner(fast_config());
  const Comparison early = runner.compare_one(*p, "mapg");
  const Comparison reactive = runner.compare_one(*p, "mapg-noearly");
  EXPECT_LE(early.runtime_overhead, reactive.runtime_overhead + 1e-12);
}

TEST_P(WorkloadProps, GatedTimeTracksMemoryBoundedness) {
  const WorkloadProfile* p = find_profile(GetParam());
  ASSERT_NE(p, nullptr);
  const Simulator sim(fast_config());
  const SimResult r = sim.run(*p, "mapg");
  const double stall_frac =
      static_cast<double>(r.core.stall_cycles_dram) /
      static_cast<double>(r.core.cycles);
  // Gated time can never exceed DRAM-stall time.
  EXPECT_LE(r.gated_time_fraction(), stall_frac + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadProps,
                         ::testing::Values("mcf-like", "lbm-like",
                                           "milc-like", "libquantum-like",
                                           "soplex-like", "omnetpp-like",
                                           "gcc-like", "astar-like",
                                           "bzip2-like", "hmmer-like",
                                           "gamess-like", "povray-like"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

// ---------------------------------------------------------------------------
// PG circuit properties over stage counts.
// ---------------------------------------------------------------------------
class StageProps : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(StageProps, StagingTradesLatencyForRushCurrent) {
  const std::uint32_t stages = GetParam();
  TechParams tech;
  PgCircuitConfig cfg;
  cfg.wakeup_stages = stages;
  const PgCircuit pg(cfg, tech);

  // More stages -> strictly lower peak rush current, higher wake latency.
  if (stages > 1) {
    PgCircuitConfig fewer = cfg;
    fewer.wakeup_stages = stages - 1;
    const PgCircuit pg_fewer(fewer, tech);
    EXPECT_LT(pg.rush_current_peak_a(), pg_fewer.rush_current_peak_a());
    EXPECT_GE(pg.wakeup_latency_cycles(), pg_fewer.wakeup_latency_cycles());
  }
  // Overhead energy is independent of staging (same total charge).
  const PgCircuit pg1(PgCircuitConfig{}, tech);
  EXPECT_DOUBLE_EQ(pg.overhead_energy_j(), pg1.overhead_energy_j());
  // min_stages_for_rush_limit is consistent with the forward model.
  const double imax = pg.rush_current_peak_a();
  EXPECT_LE(pg.min_stages_for_rush_limit(imax), stages);
}

INSTANTIATE_TEST_SUITE_P(Stages, StageProps,
                         ::testing::Values(1u, 2u, 3u, 4u, 6u, 8u, 12u, 16u,
                                           24u, 32u));

// ---------------------------------------------------------------------------
// Overhead-energy scaling: BET grows, savings shrink monotonically-ish.
// ---------------------------------------------------------------------------
class OverheadScaleProps : public ::testing::TestWithParam<double> {};

TEST_P(OverheadScaleProps, BetGrowsWithOverheadAndMapgStaysSafe) {
  const double scale = GetParam();
  SimConfig cfg = fast_config();
  cfg.pg.overhead_scale = scale;
  ExperimentRunner runner(cfg);
  const WorkloadProfile* p = find_profile("mcf-like");
  const Comparison mapg = runner.compare_one(*p, "mapg");
  const Comparison oracle = runner.compare_one(*p, "oracle");

  // Whatever the overhead, the threshold rule keeps MAPG's net savings
  // non-negative (it declines unprofitable stalls) and oracle-bounded.
  EXPECT_GE(mapg.net_leakage_savings, -0.001) << "scale=" << scale;
  EXPECT_GE(oracle.net_leakage_savings, mapg.net_leakage_savings - 1e-9);

  const PgCircuit pg(cfg.pg, cfg.tech);
  const PgCircuit base(PgCircuitConfig{}, cfg.tech);
  if (scale > 1.0) {
    EXPECT_GT(pg.break_even_cycles(), base.break_even_cycles());
  }
}

INSTANTIATE_TEST_SUITE_P(Scales, OverheadScaleProps,
                         ::testing::Values(0.25, 0.5, 1.0, 2.0, 4.0, 8.0));

}  // namespace
}  // namespace mapg
