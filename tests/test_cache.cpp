// Unit tests for the set-associative cache model: geometry checks, hit/miss
// behaviour, replacement policies, write-back semantics, and statistics.
#include <gtest/gtest.h>

#include <vector>

#include "mem/cache.h"

namespace mapg {
namespace {

CacheConfig small_cache(ReplPolicy repl = ReplPolicy::kLru) {
  // 4 sets x 2 ways x 64B = 512B: tiny enough to force evictions easily.
  return CacheConfig{.name = "test",
                     .size_bytes = 512,
                     .assoc = 2,
                     .line_bytes = 64,
                     .hit_latency = 3,
                     .repl = repl};
}

/// Address that maps to `set` with a distinguishing `tag`.
Addr make_addr(std::uint64_t set, std::uint64_t tag, std::uint64_t sets = 4,
               std::uint64_t line = 64) {
  return (tag * sets + set) * line;
}

TEST(CacheConfig, ValidityChecks) {
  EXPECT_TRUE(small_cache().valid());
  CacheConfig c = small_cache();
  c.line_bytes = 48;  // not a power of two
  EXPECT_FALSE(c.valid());
  c = small_cache();
  c.assoc = 0;
  EXPECT_FALSE(c.valid());
  c = small_cache();
  c.size_bytes = 500;  // not divisible
  EXPECT_FALSE(c.valid());
  c = small_cache();
  c.assoc = 3;
  c.size_bytes = 576;  // 3 sets: not a power of two
  EXPECT_FALSE(c.valid());
}

TEST(Cache, ColdMissThenHit) {
  Cache c(small_cache());
  EXPECT_FALSE(c.access(0, false).hit);
  EXPECT_TRUE(c.access(0, false).hit);
  EXPECT_TRUE(c.access(63, false).hit);   // same line
  EXPECT_FALSE(c.access(64, false).hit);  // next line
  EXPECT_EQ(c.stats().read_hits, 2u);
  EXPECT_EQ(c.stats().read_misses, 2u);
}

TEST(Cache, LineAddrMasksOffset) {
  Cache c(small_cache());
  EXPECT_EQ(c.line_addr(0), 0u);
  EXPECT_EQ(c.line_addr(63), 0u);
  EXPECT_EQ(c.line_addr(64), 64u);
  EXPECT_EQ(c.line_addr(130), 128u);
}

TEST(Cache, SetConflictEvictsLru) {
  Cache c(small_cache());
  const Addr a = make_addr(1, 0), b = make_addr(1, 1), d = make_addr(1, 2);
  c.access(a, false);
  c.access(b, false);
  c.access(a, false);          // a is now MRU
  c.access(d, false);          // evicts b (LRU)
  EXPECT_TRUE(c.contains(a));
  EXPECT_FALSE(c.contains(b));
  EXPECT_TRUE(c.contains(d));
  EXPECT_EQ(c.stats().evictions, 1u);
}

TEST(Cache, OtherSetsUnaffectedByEviction) {
  Cache c(small_cache());
  const Addr other = make_addr(2, 0);
  c.access(other, false);
  for (std::uint64_t t = 0; t < 8; ++t) c.access(make_addr(1, t), false);
  EXPECT_TRUE(c.contains(other));
}

TEST(Cache, WritebackOnlyForDirtyVictims) {
  Cache c(small_cache());
  const Addr a = make_addr(0, 0), b = make_addr(0, 1), d = make_addr(0, 2),
             e = make_addr(0, 3);
  c.access(a, true);   // dirty
  c.access(b, false);  // clean
  auto r1 = c.access(d, false);  // evicts a (dirty)
  EXPECT_TRUE(r1.writeback);
  EXPECT_EQ(r1.writeback_addr, a);
  auto r2 = c.access(e, false);  // evicts b (clean)
  EXPECT_FALSE(r2.writeback);
  EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, WriteHitMarksDirty) {
  Cache c(small_cache());
  const Addr a = make_addr(0, 0);
  c.access(a, false);  // clean fill
  c.access(a, true);   // write hit -> dirty
  c.access(make_addr(0, 1), false);
  auto r = c.access(make_addr(0, 2), false);  // evicts a
  EXPECT_TRUE(r.writeback);
  EXPECT_EQ(r.writeback_addr, a);
}

TEST(Cache, WriteThroughNeverDirty) {
  CacheConfig cfg = small_cache();
  cfg.write_back = false;
  Cache c(cfg);
  const Addr a = make_addr(0, 0);
  c.access(a, true);
  c.access(make_addr(0, 1), true);
  auto r = c.access(make_addr(0, 2), true);
  EXPECT_FALSE(r.writeback);
  EXPECT_EQ(c.stats().writebacks, 0u);
}

TEST(Cache, ContainsDoesNotPerturbLru) {
  Cache c(small_cache());
  const Addr a = make_addr(1, 0), b = make_addr(1, 1);
  c.access(a, false);
  c.access(b, false);  // LRU order: a then b
  (void)c.contains(a);  // must NOT refresh a
  c.access(make_addr(1, 2), false);  // evicts a
  EXPECT_FALSE(c.contains(a));
  EXPECT_TRUE(c.contains(b));
}

TEST(Cache, FlushEmptiesEverything) {
  Cache c(small_cache());
  for (std::uint64_t t = 0; t < 4; ++t) c.access(make_addr(0, t), true);
  c.flush();
  for (std::uint64_t t = 0; t < 4; ++t) EXPECT_FALSE(c.contains(make_addr(0, t)));
  // Re-filling after flush must not produce writebacks from stale lines.
  auto r = c.access(make_addr(0, 9), false);
  EXPECT_FALSE(r.writeback);
}

TEST(Cache, TreePlruVictimIsNotMru) {
  CacheConfig cfg = small_cache(ReplPolicy::kTreePlru);
  cfg.size_bytes = 2048;  // 4 sets x 8 ways
  cfg.assoc = 8;
  Cache c(cfg);
  // Fill set 0 with 8 tags, touching each once.
  for (std::uint64_t t = 0; t < 8; ++t) c.access(make_addr(0, t), false);
  // Touch tag 3 (MRU), then force one eviction.
  c.access(make_addr(0, 3), false);
  c.access(make_addr(0, 99), false);
  EXPECT_TRUE(c.contains(make_addr(0, 3)));  // MRU must survive
}

TEST(Cache, TreePlruHitRateComparableToLruOnLoopingPattern) {
  CacheConfig lru_cfg = small_cache(ReplPolicy::kLru);
  CacheConfig plru_cfg = small_cache(ReplPolicy::kTreePlru);
  lru_cfg.size_bytes = plru_cfg.size_bytes = 4096;  // 8 sets x 8 ways
  lru_cfg.assoc = plru_cfg.assoc = 8;
  Cache lru(lru_cfg), plru(plru_cfg);
  // Working set that fits: both should converge to ~100% hits.
  std::vector<Addr> lines;
  for (std::uint64_t i = 0; i < 48; ++i) lines.push_back(i * 64);
  for (int rep = 0; rep < 50; ++rep)
    for (Addr a : lines) {
      lru.access(a, false);
      plru.access(a, false);
    }
  EXPECT_GT(lru.stats().read_hits, 2200u);
  EXPECT_GT(plru.stats().read_hits, 2200u);
}

TEST(Cache, RandomPolicyStaysWithinSet) {
  Cache c(small_cache(ReplPolicy::kRandom));
  const Addr resident = make_addr(3, 0);
  c.access(resident, false);
  // Hammer a different set; the resident line in set 3 must never be chosen.
  for (std::uint64_t t = 0; t < 64; ++t) c.access(make_addr(2, t), false);
  EXPECT_TRUE(c.contains(resident));
}

TEST(Cache, StatsMissRate) {
  Cache c(small_cache());
  c.access(0, false);   // miss
  c.access(0, false);   // hit
  c.access(0, true);    // write hit
  c.access(4096, true); // write miss
  const CacheStats& s = c.stats();
  EXPECT_EQ(s.accesses(), 4u);
  EXPECT_EQ(s.misses(), 2u);
  EXPECT_DOUBLE_EQ(s.miss_rate(), 0.5);
  c.reset_stats();
  EXPECT_EQ(c.stats().accesses(), 0u);
}

TEST(Cache, LargeRealisticGeometry) {
  // The default L2: 1 MiB, 16-way — sanity-check geometry math.
  CacheConfig cfg{.name = "L2",
                  .size_bytes = 1024 * 1024,
                  .assoc = 16,
                  .line_bytes = 64,
                  .hit_latency = 12};
  ASSERT_TRUE(cfg.valid());
  EXPECT_EQ(cfg.num_sets(), 1024u);
  Cache c(cfg);
  // A strided sweep twice the cache size must thrash; the second pass over
  // the first half can't hit (LRU with a cyclic pattern evicts just-needed).
  const std::uint64_t lines = 2 * 1024 * 1024 / 64;
  for (std::uint64_t i = 0; i < lines; ++i) c.access(i * 64, false);
  for (std::uint64_t i = 0; i < lines / 2; ++i) c.access(i * 64, false);
  EXPECT_EQ(c.stats().read_hits, 0u);
}

}  // namespace
}  // namespace mapg
