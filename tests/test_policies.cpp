// Unit tests for the gating policies: decision rules, the information
// boundary (known_residual), naming, and the factory.
#include <gtest/gtest.h>

#include "pg/factory.h"
#include "pg/policies.h"

namespace mapg {
namespace {

PolicyContext ctx() {
  return PolicyContext{.entry_latency = 6, .wakeup_latency = 30,
                       .break_even = 47};
}

StallEvent dram_stall(Cycle start, Cycle len, Cycle commit_offset = 50,
                      Cycle estimate_len = 0) {
  StallEvent ev;
  ev.start = start;
  ev.data_ready = start + len;
  ev.commit = start + commit_offset;  // return exactly known mid-stall
  ev.estimate = start + (estimate_len ? estimate_len : len);
  ev.dram = true;
  ev.reason = StallReason::kDependence;
  return ev;
}

TEST(KnownResidual, UsesExactValueOnceCommitted) {
  StallEvent ev = dram_stall(1000, 200);
  ev.commit = 900;  // committed before the stall began
  EXPECT_EQ(known_residual(ev), 200u);
  ev.commit = 1000;  // committed exactly at stall onset
  EXPECT_EQ(known_residual(ev), 200u);
}

TEST(KnownResidual, FallsBackToEstimateBeforeCommit) {
  StallEvent ev = dram_stall(1000, 200, /*commit_offset=*/50,
                             /*estimate_len=*/150);
  EXPECT_EQ(known_residual(ev), 150u);  // estimate, not the true 200
}

TEST(KnownResidual, ClampsPastEstimatesToZero) {
  StallEvent ev = dram_stall(1000, 200, 50);
  ev.estimate = 900;  // estimate already in the past
  EXPECT_EQ(known_residual(ev), 0u);
}

TEST(NoGating, NeverGates) {
  NoGatingPolicy p(ctx());
  EXPECT_FALSE(p.should_gate(dram_stall(0, 10000)));
  EXPECT_EQ(p.name(), "no-gating");
}

TEST(IdleTimeout, AlwaysGatesWithDelay) {
  IdleTimeoutPolicy p(ctx(), 64);
  EXPECT_TRUE(p.should_gate(dram_stall(0, 10)));  // blind to length
  EXPECT_EQ(p.gate_delay(), 64u);
  EXPECT_EQ(p.wake_mode(), WakeMode::kReactive);
  EXPECT_EQ(p.name(), "idle-timeout-64");
}

TEST(IdleTimeout, EarlyWakeVariant) {
  IdleTimeoutPolicy p(ctx(), 32, /*early_wake=*/true);
  EXPECT_EQ(p.wake_mode(), WakeMode::kEarly);
  EXPECT_EQ(p.gate_delay(), 32u);
  EXPECT_EQ(p.name(), "idle-timeout-early-32");
  auto made = make_policy("idle-timeout-early:128", ctx());
  ASSERT_NE(made, nullptr);
  EXPECT_EQ(made->gate_delay(), 128u);
  EXPECT_EQ(made->wake_mode(), WakeMode::kEarly);
}

TEST(Oracle, GatesExactlyProfitableStalls) {
  OraclePolicy p(ctx());
  // Threshold: entry + wakeup + BET = 6 + 30 + 47 = 83.
  EXPECT_FALSE(p.should_gate(dram_stall(100, 82)));
  EXPECT_TRUE(p.should_gate(dram_stall(100, 83)));
  EXPECT_EQ(p.wake_mode(), WakeMode::kOracle);
}

TEST(Oracle, IgnoresEstimates) {
  OraclePolicy p(ctx());
  // True length profitable even though the estimate says otherwise.
  StallEvent ev = dram_stall(100, 200, 50, /*estimate_len=*/10);
  EXPECT_TRUE(p.should_gate(ev));
}

TEST(Mapg, GatesOnSufficientKnownResidual) {
  MapgPolicy p(ctx(), {});
  EXPECT_TRUE(p.should_gate(dram_stall(100, 200)));   // estimate = len = 200
  EXPECT_FALSE(p.should_gate(dram_stall(100, 50)));   // too short
  EXPECT_EQ(p.name(), "mapg");
  EXPECT_EQ(p.wake_mode(), WakeMode::kEarly);
}

TEST(Mapg, RespectsEstimateNotTruth) {
  MapgPolicy p(ctx(), {});
  // True length 300, but the uncommitted estimate says 60: must decline.
  EXPECT_FALSE(p.should_gate(dram_stall(100, 300, 50, 60)));
  // True length 60, estimate says 300: gates (and would eat the loss).
  EXPECT_TRUE(p.should_gate(dram_stall(100, 60, 50, 300)));
}

TEST(Mapg, DramOnlyFilter) {
  MapgPolicy filtered(ctx(), {});
  StallEvent l2 = dram_stall(100, 500);
  l2.dram = false;
  EXPECT_FALSE(filtered.should_gate(l2));

  MapgPolicy unfiltered(ctx(), {.dram_only = false});
  EXPECT_TRUE(unfiltered.should_gate(l2));
  EXPECT_EQ(unfiltered.name(), "mapg-unfiltered");
}

TEST(Mapg, AggressiveSkipsThreshold) {
  MapgPolicy p(ctx(), {.aggressive = true});
  EXPECT_TRUE(p.should_gate(dram_stall(100, 1)));  // any DRAM stall
  StallEvent l2 = dram_stall(100, 1000);
  l2.dram = false;
  EXPECT_FALSE(p.should_gate(l2));  // still DRAM-only
  EXPECT_EQ(p.name(), "mapg-aggressive");
}

TEST(Mapg, AlphaScalesThreshold) {
  // alpha = 2: threshold = 6 + 30 + 94 = 130.
  MapgPolicy strict(ctx(), {.alpha = 2.0});
  EXPECT_FALSE(strict.should_gate(dram_stall(100, 129)));
  EXPECT_TRUE(strict.should_gate(dram_stall(100, 130)));
  // alpha = 0: threshold = 36.
  MapgPolicy eager(ctx(), {.alpha = 0.0});
  EXPECT_TRUE(eager.should_gate(dram_stall(100, 36)));
  EXPECT_FALSE(eager.should_gate(dram_stall(100, 35)));
}

TEST(Mapg, NoEarlyVariantWakesReactively) {
  MapgPolicy p(ctx(), {.early_wake = false});
  EXPECT_EQ(p.wake_mode(), WakeMode::kReactive);
  EXPECT_EQ(p.name(), "mapg-noearly");
}

TEST(Factory, BuildsEveryStandardSpec) {
  for (const auto& spec : standard_policy_specs()) {
    auto p = make_policy(spec, ctx());
    ASSERT_NE(p, nullptr) << spec;
  }
  for (const auto& spec : ablation_policy_specs()) {
    auto p = make_policy(spec, ctx());
    ASSERT_NE(p, nullptr) << spec;
  }
}

TEST(Factory, ParsesParameters) {
  auto timeout = make_policy("idle-timeout:128", ctx());
  ASSERT_NE(timeout, nullptr);
  EXPECT_EQ(timeout->gate_delay(), 128u);

  auto mapg = make_policy("mapg:alpha=2.0", ctx());
  ASSERT_NE(mapg, nullptr);
  // threshold = 130 (see AlphaScalesThreshold)
  EXPECT_FALSE(mapg->should_gate(dram_stall(100, 129)));
  EXPECT_TRUE(mapg->should_gate(dram_stall(100, 130)));
}

TEST(Factory, RejectsUnknownSpec) {
  EXPECT_EQ(make_policy("definitely-not-a-policy", ctx()), nullptr);
  EXPECT_EQ(make_policy("", ctx()), nullptr);
}

TEST(Factory, DefaultIdleTimeout) {
  auto p = make_policy("idle-timeout", ctx());
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->gate_delay(), 64u);
}

}  // namespace
}  // namespace mapg
