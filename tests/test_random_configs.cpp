// Randomized-config property test: a seeded sweep over the configuration
// space, checking on every sample that
//   (a) the fast-forward and cycle-accurate kernels agree bit-for-bit, and
//   (b) the accounting invariants hold (exact cycle conservation, refresh
//       bound, penalty consistency).
// The sweep is fully deterministic — one mt19937_64 seeded with a constant —
// so a failure reproduces by sample index.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "core/sim.h"
#include "exec/serialize.h"
#include "multicore/multicore.h"
#include "replay/replay.h"
#include "trace/profile.h"

namespace mapg {
namespace {

struct Sample {
  SimConfig cfg;
  std::string workload;
  std::string policy;
};

Sample draw(std::mt19937_64& rng) {
  auto pick_u = [&rng](std::uint64_t lo, std::uint64_t hi) {
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(rng);
  };
  auto pick_d = [&rng](double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(rng);
  };

  Sample s;
  s.cfg.instructions = pick_u(10'000, 25'000);
  s.cfg.warmup_instructions = pick_u(0, 4'000);
  s.cfg.run_seed = pick_u(0, 1'000'000);
  // Checkpoint capture cadence (replay/checkpoint.h): off half the time,
  // else a stride that lands several checkpoints inside the run.  Inert for
  // direct simulation; the resume fuzz below exercises it.
  s.cfg.checkpoint_stride = pick_u(0, 1) == 0 ? 0 : pick_u(500, 6'000);

  // Core shape.
  s.cfg.core.issue_width = static_cast<std::uint32_t>(pick_u(1, 4));
  s.cfg.core.mlp_window = static_cast<std::uint32_t>(pick_u(1, 24));
  s.cfg.core.div_latency = pick_u(8, 40);

  // Named timing standard first (docs/DRAM.md §2); the per-key corners
  // below then override parts of the preset, which is exactly the custom
  // path config_apply supports.
  switch (pick_u(0, 3)) {
    case 0:
      break;  // untouched defaults
    case 1:
      apply_dram_standard(s.cfg.mem.dram, DramStandard::kDdr3_1600);
      break;
    case 2:
      apply_dram_standard(s.cfg.mem.dram, DramStandard::kDdr4_2400);
      s.cfg.dram_energy = dram_energy_for_standard(DramStandard::kDdr4_2400);
      break;
    default:
      apply_dram_standard(s.cfg.mem.dram, DramStandard::kLpddr4_3200);
      s.cfg.dram_energy =
          dram_energy_for_standard(DramStandard::kLpddr4_3200);
      break;
  }

  // DRAM timing, including refresh corners: disabled, short-period, and
  // t_rfc >= t_refi (pathological but must still agree).
  switch (pick_u(0, 3)) {
    case 0:
      s.cfg.mem.dram.t_refi = 0;
      break;
    case 1:
      s.cfg.mem.dram.t_refi = pick_u(1'000, 4'000);
      s.cfg.mem.dram.t_rfc = pick_u(100, 600);
      break;
    case 2:
      s.cfg.mem.dram.t_refi = pick_u(8'000, 30'000);
      s.cfg.mem.dram.t_rfc = pick_u(200, 800);
      break;
    default:
      s.cfg.mem.dram.t_refi = pick_u(200, 600);
      s.cfg.mem.dram.t_rfc = pick_u(600, 1'200);
      break;
  }
  s.cfg.mem.dram.channels = static_cast<std::uint32_t>(pick_u(1, 4));
  s.cfg.mem.dram.t_cl = pick_u(20, 60);

  // DRAM low-power states (docs/MEMORY_POWER.md): off, timeout-driven with
  // random timers (self-refresh escalation armed half the time), or
  // coordinated — where the policy opts in below via the "-dram" suffix.
  switch (pick_u(0, 2)) {
    case 0:
      break;  // kOff
    case 1:
      s.cfg.mem.dram.power.mode = DramPowerMode::kTimeout;
      s.cfg.mem.dram.power.powerdown_timeout = pick_u(32, 1'024);
      if (pick_u(0, 1) == 1)
        s.cfg.mem.dram.power.selfrefresh_timeout =
            s.cfg.mem.dram.power.powerdown_timeout + pick_u(0, 20'000);
      break;
    default:
      s.cfg.mem.dram.power.mode = DramPowerMode::kCoordinated;
      break;
  }
  EXPECT_TRUE(s.cfg.mem.dram.power.valid());

  // Page-management policy and the FR-FCFS posted-write queue (docs/DRAM.md
  // §3-§4): queue depth 0 (the legacy synchronous path) half the time, else
  // a small bounded queue with a random starvation bound.
  switch (pick_u(0, 2)) {
    case 0:
      break;  // kOpen
    case 1:
      s.cfg.mem.dram.page_policy = PagePolicy::kClosed;
      break;
    default:
      s.cfg.mem.dram.page_policy = PagePolicy::kHybrid;
      s.cfg.mem.dram.hybrid_addr_bits =
          static_cast<std::uint32_t>(pick_u(1, 8));
      break;
  }
  if (pick_u(0, 1) == 1) {
    s.cfg.mem.dram.queue_depth = static_cast<std::uint32_t>(pick_u(1, 16));
    s.cfg.mem.dram.write_starve_limit = pick_u(64, 4'096);
  }
  // (No blanket dram.valid() check: the refresh corner above deliberately
  // draws the pathological t_rfc >= t_refi shape.)

  // Gating circuit; keep valid(): light_swing <= rail_swing, fractions in
  // (0, 1].
  s.cfg.pg.wakeup_stages = static_cast<std::uint32_t>(pick_u(1, 16));
  s.cfg.pg.stage_delay_ns = pick_d(0.25, 3.0);
  s.cfg.pg.entry_ns = pick_d(0.0, 6.0);
  s.cfg.pg.settle_ns = pick_d(0.0, 4.0);
  s.cfg.pg.c_vrail_nf = pick_d(1.0, 12.0);
  s.cfg.pg.gate_charge_nj = pick_d(0.0, 4.0);
  s.cfg.pg.rail_swing_frac = pick_d(0.5, 1.0);
  s.cfg.pg.light_swing_frac = pick_d(0.05, s.cfg.pg.rail_swing_frac);
  s.cfg.pg.light_save_frac = pick_d(0.2, 0.9);
  s.cfg.pg.light_wakeup_stages = static_cast<std::uint32_t>(pick_u(1, 4));
  EXPECT_TRUE(s.cfg.pg.valid());

  static const char* kWorkloads[] = {"mcf-like", "libquantum-like",
                                     "omnetpp-like", "milc-like",
                                     "gamess-like", "astar-like"};
  static const char* kPolicies[] = {
      "none",         "idle-timeout:32", "idle-timeout-early:128",
      "oracle",       "mapg",            "mapg-aggressive",
      "mapg-history", "mapg-multimode",  "mapg-hybrid"};
  s.workload = kWorkloads[pick_u(0, std::size(kWorkloads) - 1)];
  s.policy = kPolicies[pick_u(0, std::size(kPolicies) - 1)];
  if (s.cfg.mem.dram.power.mode == DramPowerMode::kCoordinated) {
    // Opt the policy into coordination: the "-dram" suffix goes on the name,
    // before any ":params" tail.
    const auto colon = s.policy.find(':');
    s.policy.insert(colon == std::string::npos ? s.policy.size() : colon,
                    "-dram");
  }
  return s;
}

void check_invariants(const SimResult& r, const std::string& what) {
  const GatingActivity& a = r.gating.activity;
  // Exact cycle conservation: every idle cycle is classified exactly once.
  EXPECT_EQ(a.entry_cycles + a.gated_cycles + a.wake_cycles +
                r.gating.idle_ungated_cycles,
            r.core.idle_cycles())
      << what;
  // Refresh overlap can cover at most every stall-window cycle.
  EXPECT_LE(r.gating.refresh_window_cycles, r.core.idle_cycles()) << what;
  // Every gating decision lands in exactly one outcome bucket.
  EXPECT_EQ(r.gating.eligible_stalls, r.gating.gated_events +
                                          r.gating.skipped_events +
                                          r.gating.timeout_missed)
      << what;
  // The controller's added cycles are what the core booked as penalties.
  EXPECT_EQ(r.gating.penalty_cycles, r.core.penalty_cycles) << what;
  EXPECT_GT(r.core.cycles, 0u) << what;
}

TEST(RandomConfigs, FastForwardEquivalenceSweep) {
  std::mt19937_64 rng(0x4d415047u);  // "MAPG"
  constexpr int kSamples = 25;
  for (int i = 0; i < kSamples; ++i) {
    const Sample s = draw(rng);
    const std::string what = "sample " + std::to_string(i) + ": " +
                             s.workload + " / " + s.policy +
                             " seed=" + std::to_string(s.cfg.run_seed);

    SimConfig fast = s.cfg;
    fast.fast_forward = true;
    SimConfig stepped = s.cfg;
    stepped.fast_forward = false;

    const WorkloadProfile* p = find_profile(s.workload);
    ASSERT_NE(p, nullptr) << what;
    const SimResult a = Simulator(fast).run(*p, s.policy);
    const SimResult b = Simulator(stepped).run(*p, s.policy);

    EXPECT_EQ(result_to_json(a).dump(), result_to_json(b).dump()) << what;
    check_invariants(a, what + " [fast]");
    check_invariants(b, what + " [stepped]");

    // Power-residency accounting is mutually exclusive by mode: timeout
    // residency tiles the DRAM-side window; coordinated residency lives only
    // in the gating stats.  The DRAM window is NOT bit-identical to the core
    // window: requests carry timestamps `core.now() + l1 + l2 + mc` cycles
    // ahead of the core clock, so an access in flight across the warmup
    // reset (or the final snapshot) shifts that channel's accounting
    // boundary by up to the request-path latency.  Exact tiling is pinned in
    // test_dram_power.cpp where both clocks are driven together; here the
    // per-channel straddle bounds the mismatch.
    const DramPowerMode mode = s.cfg.mem.dram.power.mode;
    if (mode == DramPowerMode::kTimeout) {
      const std::uint64_t straddle =
          static_cast<std::uint64_t>(s.cfg.mem.l1d.hit_latency +
                                     s.cfg.mem.l2.hit_latency +
                                     s.cfg.mem.mc_request_latency) *
          s.cfg.mem.dram.channels;
      const std::uint64_t window =
          static_cast<std::uint64_t>(a.core.cycles) *
          s.cfg.mem.dram.channels;
      EXPECT_GE(a.dram.accounted_cycles() + straddle, window) << what;
      EXPECT_LE(a.dram.accounted_cycles(), window + straddle) << what;
    } else {
      EXPECT_EQ(a.dram.accounted_cycles(), 0u) << what;
    }
    if (mode != DramPowerMode::kCoordinated)
      EXPECT_EQ(a.gating.dram_pd_channel_cycles, 0u) << what;
  }
}

// Replay corners over the same randomized configuration space: pathological
// refresh timing, DRAM low-power modes, random gating circuits.  For every
// sample the timeline replay must either reproduce the direct run
// bit-for-bit (ok == true) or refuse (ok == false, engine falls back) —
// a replay that "succeeds" with different numbers is the one failure mode
// this sweep exists to catch.
TEST(RandomConfigs, ReplayEquivalenceSweep) {
  std::mt19937_64 rng(0x5245504cu);  // "REPL"
  constexpr int kSamples = 20;
  for (int i = 0; i < kSamples; ++i) {
    Sample s = draw(rng);
    s.cfg.fast_forward = true;  // the replay engine's operating mode
    const std::string what = "sample " + std::to_string(i) + ": " +
                             s.workload + " / " + s.policy +
                             " seed=" + std::to_string(s.cfg.run_seed);
    const WorkloadProfile* p = find_profile(s.workload);
    ASSERT_NE(p, nullptr) << what;

    const StallTimeline tl = record_timeline(s.cfg, *p);
    EXPECT_EQ(result_to_json(*tl.reference).dump(),
              result_to_json(Simulator(s.cfg).run(*p, "none")).dump())
        << what;

    // `none` gates nothing, so no window can be penalized: always replays.
    const ReplayOutcome none = replay_policy(tl, "none");
    ASSERT_TRUE(none.ok) << what;
    EXPECT_EQ(result_to_json(none.result).dump(),
              result_to_json(*tl.reference).dump())
        << what;

    const ReplayOutcome out = replay_policy(tl, s.policy);
    if (out.ok) {
      const SimResult direct = Simulator(s.cfg).run(*p, s.policy);
      EXPECT_EQ(result_to_json(out.result).dump(),
                result_to_json(direct).dump())
          << what;
      check_invariants(out.result, what + " [replayed]");
    }
  }
}

// Checkpoint + prefix-resume corners over the randomized space: random
// strides, random first-penalized-window positions (an idle-timeout
// threshold drawn across its transition band, over random cache shapes and
// workloads, moves the first penalty anywhere from window 0 to "never"),
// and the DRAM power-down / self-refresh straddles draw() already emits.
// For every eligible checkpoint, resuming there must reproduce the
// from-zero run bit-for-bit; resume_policy must pick an eligible
// checkpoint or refuse.
TEST(RandomConfigs, CheckpointResumeFuzz) {
  std::mt19937_64 rng(0x434b5054u);  // "CKPT"
  auto pick_u = [&rng](std::uint64_t lo, std::uint64_t hi) {
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(rng);
  };
  constexpr int kSamples = 10;
  for (int i = 0; i < kSamples; ++i) {
    Sample s = draw(rng);
    s.cfg.fast_forward = true;  // the replay engine's operating mode
    if (s.cfg.checkpoint_stride == 0)
      s.cfg.checkpoint_stride = pick_u(500, 3'000);
    // Small random caches raise the stall density, and a threshold drawn
    // across the reactive timer's transition band randomizes where the
    // first penalized window lands.
    s.cfg.mem.l1d.size_bytes = 1024u << pick_u(2, 4);
    s.cfg.mem.l1d.assoc = 4;
    s.cfg.mem.l2.size_bytes = 16'384u << pick_u(1, 3);
    s.cfg.mem.l2.assoc = 8;
    s.policy = "idle-timeout:" + std::to_string(pick_u(400, 1'000));
    const std::string what = "sample " + std::to_string(i) + ": " +
                             s.workload + " / " + s.policy +
                             " stride=" + std::to_string(s.cfg.checkpoint_stride) +
                             " seed=" + std::to_string(s.cfg.run_seed);
    const WorkloadProfile* p = find_profile(s.workload);
    ASSERT_NE(p, nullptr) << what;

    const StallTimeline tl = record_timeline(s.cfg, *p);
    ASSERT_FALSE(tl.checkpoints.empty()) << what;

    const ReplayOutcome rep = replay_policy(tl, s.policy);
    const std::uint64_t first_pen =
        rep.ok ? ~std::uint64_t{0} : rep.windows - 1;
    SharedTraceView view(tl.record.trace);
    const std::string want =
        result_to_json(Simulator(s.cfg).run(view, p->name, s.policy)).dump();
    if (rep.ok) EXPECT_EQ(result_to_json(rep.result).dump(), want) << what;

    // Every eligible checkpoint, thinned to a bounded subset per sample.
    std::vector<const SimCheckpoint*> eligible;
    for (const SimCheckpoint& ck : tl.checkpoints)
      if (ck.windows <= first_pen) eligible.push_back(&ck);
    const std::size_t step = eligible.size() > 8 ? eligible.size() / 8 : 1;
    for (std::size_t k = 0; k < eligible.size(); k += step)
      EXPECT_EQ(
          result_to_json(resume_from_checkpoint(tl, *eligible[k], s.policy))
              .dump(),
          want)
          << what << " ck@" << eligible[k]->instr_pos;

    if (!rep.ok) {
      const ResumeOutcome out = resume_policy(tl, s.policy, first_pen);
      EXPECT_EQ(out.ok, !eligible.empty()) << what;
      if (out.ok) {
        EXPECT_EQ(result_to_json(out.result).dump(), want) << what;
        EXPECT_EQ(out.from_instr, eligible.back()->instr_pos) << what;
      }
    }
  }
}

// Multicore rider over the same randomized core/cache/PG space: the
// min-heap scheduler with its bulk-run horizon must stay bit-identical to
// the linear min-scan on configurations nobody hand-picked.
TEST(RandomConfigs, MulticoreHeapSchedulerEquivalence) {
  std::mt19937_64 rng(0x4d43464cu);  // "MCFL"
  auto pick_u = [&rng](std::uint64_t lo, std::uint64_t hi) {
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(rng);
  };
  constexpr int kSamples = 5;
  for (int i = 0; i < kSamples; ++i) {
    const Sample s = draw(rng);
    MulticoreConfig mc;
    mc.core = s.cfg.core;
    mc.mem = s.cfg.mem;
    mc.tech = s.cfg.tech;
    mc.pg = s.cfg.pg;
    mc.num_cores = static_cast<std::uint32_t>(pick_u(2, 4));
    mc.instructions_per_core = 15'000;
    mc.warmup_instructions = 3'000;
    mc.run_seed = s.cfg.run_seed;
    const std::string what = "sample " + std::to_string(i) + ": " +
                             s.workload + " / " + s.policy + " cores=" +
                             std::to_string(mc.num_cores);
    const WorkloadProfile* p = find_profile(s.workload);
    ASSERT_NE(p, nullptr) << what;

    mc.heap_scheduler = true;
    const MulticoreResult heap = MulticoreSim(mc).run({*p}, s.policy);
    mc.heap_scheduler = false;
    const MulticoreResult scan = MulticoreSim(mc).run({*p}, s.policy);

    ASSERT_EQ(heap.cores.size(), scan.cores.size()) << what;
    for (std::size_t c = 0; c < heap.cores.size(); ++c) {
      EXPECT_EQ(heap.cores[c].core.cycles, scan.cores[c].core.cycles)
          << what << " core " << c;
      EXPECT_EQ(heap.cores[c].core.instrs, scan.cores[c].core.instrs)
          << what << " core " << c;
      EXPECT_EQ(heap.cores[c].gating.gated_events,
                scan.cores[c].gating.gated_events)
          << what << " core " << c;
    }
    EXPECT_EQ(heap.dram.reads, scan.dram.reads) << what;
    EXPECT_DOUBLE_EQ(heap.total_j(), scan.total_j()) << what;
  }
}

}  // namespace
}  // namespace mapg
