// Trace ingestion + sampled simulation suite (docs/TRACE.md).
//
// Pins the contracts the sampling pipeline is allowed to claim: the two
// on-disk formats carry the identical stream (and the identical
// content digest), the reader throws on damage instead of reporting a
// short trace, the text converters produce exactly the documented
// records, plans are deterministic functions of (content, config) — across
// runs, thread counts, and the MAPGSIG1 signature cache — and the
// degenerate clusters >= regions case is bit-identical to full simulation.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "exec/engine.h"
#include "exec/serialize.h"
#include "sample/runner.h"
#include "trace/convert.h"
#include "trace/generator.h"
#include "trace/profile.h"
#include "trace/trace_file.h"

namespace mapg {
namespace {

/// Unique-ish per-test temp path under the build dir's cwd.
std::string tmp_path(const std::string& stem) {
  return "test_sampling_" + stem + ".tmp";
}

struct TempFile {
  explicit TempFile(std::string p) : path(std::move(p)) {}
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

std::vector<Instr> generate(const std::string& workload, std::uint64_t n,
                            std::uint64_t seed = 42) {
  TraceGenerator gen(*find_profile(workload), seed);
  std::vector<Instr> out;
  out.reserve(n);
  Instr instr;
  for (std::uint64_t i = 0; i < n && gen.next(instr); ++i)
    out.push_back(instr);
  return out;
}

std::vector<Instr> read_all(const std::string& path) {
  FileTraceSource src(path);
  std::vector<Instr> out;
  Instr instr;
  while (src.next(instr)) out.push_back(instr);
  return out;
}

bool same_stream(const std::vector<Instr>& a, const std::vector<Instr>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].op != b[i].op || a[i].addr != b[i].addr ||
        a[i].dep_dist != b[i].dep_dist)
      return false;
  return true;
}

std::string dump(const SimResult& r) { return result_to_json(r).dump(); }

// --- formats ---------------------------------------------------------------

TEST(TraceFile, V1AndV2CarryTheIdenticalStreamAndDigest) {
  const std::vector<Instr> ref = generate("mcf-like", 200'000);
  TempFile v1(tmp_path("v1")), v2(tmp_path("v2")), v2small(tmp_path("v2s"));
  {
    VectorTraceSource s(ref);
    ASSERT_TRUE(write_trace_file(v1.path, s, ref.size()));
  }
  {
    VectorTraceSource s(ref);
    ASSERT_TRUE(write_trace_file_v2(v2.path, s, ref.size()));
  }
  {
    // Chunking is framing, not content: a different chunk size must change
    // neither the stream nor the digest.
    VectorTraceSource s(ref);
    ASSERT_TRUE(write_trace_file_v2(v2small.path, s, ref.size(), nullptr,
                                    /*chunk_size=*/1000));
  }
  EXPECT_TRUE(same_stream(ref, read_all(v1.path)));
  EXPECT_TRUE(same_stream(ref, read_all(v2.path)));
  EXPECT_TRUE(same_stream(ref, read_all(v2small.path)));

  FileTraceSource a(v1.path), b(v2.path), c(v2small.path);
  EXPECT_EQ(a.info().version, 1);
  EXPECT_EQ(b.info().version, 2);
  EXPECT_EQ(a.info().stream_digest, b.info().stream_digest);
  EXPECT_EQ(b.info().stream_digest, c.info().stream_digest);
  EXPECT_EQ(c.info().n_chunks, (ref.size() + 999) / 1000);
}

TEST(TraceFile, SeekWindowMatchesMaterializedSlice) {
  const std::vector<Instr> ref = generate("omnetpp-like", 50'000);
  TempFile f(tmp_path("seek"));
  {
    VectorTraceSource s(ref);
    ASSERT_TRUE(write_trace_file_v2(f.path, s, ref.size(), nullptr, 4096));
  }
  FileTraceSource src(f.path);
  src.seek(17'500);  // mid-chunk, several chunks in
  LimitedTraceSource window(src, 1'000);
  Instr instr;
  std::size_t i = 17'500;
  while (window.next(instr)) {
    ASSERT_LT(i, ref.size());
    EXPECT_EQ(instr.addr, ref[i].addr);
    EXPECT_EQ(instr.op, ref[i].op);
    ++i;
  }
  EXPECT_EQ(i, 18'500u);
  src.seek(ref.size() + 10);  // past-end clamps to a clean EOF
  EXPECT_FALSE(src.next(instr));
}

TEST(TraceFile, TruncationAndCorruptionThrowRatherThanEndCleanly) {
  const std::vector<Instr> ref = generate("gcc-like", 20'000);
  TempFile f(tmp_path("damage"));
  {
    VectorTraceSource s(ref);
    ASSERT_TRUE(write_trace_file_v2(f.path, s, ref.size(), nullptr, 4096));
  }
  std::string bytes;
  {
    std::ifstream in(f.path, std::ios::binary);
    bytes.assign((std::istreambuf_iterator<char>(in)),
                 std::istreambuf_iterator<char>());
  }

  // Truncated payload: the header promises more than the file holds.
  {
    TempFile t(tmp_path("trunc"));
    std::ofstream out(t.path, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 64));
    out.close();
    EXPECT_THROW(FileTraceSource src(t.path), std::runtime_error);
  }

  // Bad magic.
  {
    TempFile t(tmp_path("magic"));
    std::string mutated = bytes;
    mutated[0] = 'X';
    std::ofstream(t.path, std::ios::binary) << mutated;
    EXPECT_THROW(FileTraceSource src(t.path), std::runtime_error);
  }

  // Flip one payload byte in the third chunk: open succeeds (the index is
  // intact), streaming must throw AT the damaged chunk — never a silent
  // short trace.
  {
    TempFile t(tmp_path("corrupt"));
    std::string mutated = bytes;
    const std::size_t payload_off =
        40 + 5 * 24 + 2 * 4096 * 11 + 17;  // header + 5-entry index,
                                           // 2 intact chunks, +17 into 3rd
    ASSERT_LT(payload_off, mutated.size());
    mutated[payload_off] = static_cast<char>(mutated[payload_off] ^ 0x40);
    std::ofstream(t.path, std::ios::binary) << mutated;
    FileTraceSource src(t.path);
    Instr instr;
    std::uint64_t served = 0;
    EXPECT_THROW(
        {
          while (src.next(instr)) ++served;
        },
        std::runtime_error);
    EXPECT_EQ(served, 2u * 4096u);  // both intact chunks served first
  }
}

// --- converters ------------------------------------------------------------

TEST(Convert, RwDialectGolden) {
  std::istringstream text(
      "# capture header comment\n"
      "R 0x1000\n"
      "\n"
      "w 4096\n"
      "R 0x2040 # trailing comment\n");
  ConvertOptions opts;
  opts.dep_dist = 3;
  opts.pad = 1;
  std::vector<Instr> out;
  std::string err;
  ASSERT_TRUE(convert_text_trace(text, "rw", opts, out, &err)) << err;
  // 3 accesses, each followed by one ALU pad.
  ASSERT_EQ(out.size(), 6u);
  EXPECT_EQ(out[0].op, OpClass::kLoad);
  EXPECT_EQ(out[0].addr, 0x1000u);
  EXPECT_EQ(out[0].dep_dist, 3);
  EXPECT_EQ(out[1].op, OpClass::kAlu);
  EXPECT_EQ(out[1].addr, kNoAddr);
  EXPECT_EQ(out[2].op, OpClass::kStore);
  EXPECT_EQ(out[2].addr, 4096u);
  EXPECT_EQ(out[2].dep_dist, 0);  // stores carry no dep distance
  EXPECT_EQ(out[4].op, OpClass::kLoad);
  EXPECT_EQ(out[4].addr, 0x2040u);
}

TEST(Convert, DineroDialectDropsIfetchKeepsCount) {
  std::istringstream text("0 1000\n2 dead0\n1 2000\n");
  ConvertOptions opts;
  std::vector<Instr> out;
  ASSERT_TRUE(convert_text_trace(text, "dinero", opts, out));
  ASSERT_EQ(out.size(), 2u);  // label-2 ifetch validated, then dropped
  EXPECT_EQ(out[0].op, OpClass::kLoad);
  EXPECT_EQ(out[0].addr, 0x1000u);  // dinero addresses are hex
  EXPECT_EQ(out[1].op, OpClass::kStore);
  EXPECT_EQ(out[1].addr, 0x2000u);
}

TEST(Convert, ChampsimDialectGolden) {
  // CRC2-style text: `<ip> <addr> <L|S>`, both hex with optional 0x; the
  // instruction pointer is validated then dropped (the model has no I-side).
  std::istringstream text(
      "# champsim text capture\n"
      "0x401a10 0x7f001000 L\n"
      "\n"
      "401a14 7f002040 s\n"
      "0x401a18 0x7f001000 L # trailing comment\n");
  ConvertOptions opts;
  opts.dep_dist = 5;
  opts.pad = 1;
  std::vector<Instr> out;
  std::string err;
  ASSERT_TRUE(convert_text_trace(text, "champsim", opts, out, &err)) << err;
  // 3 accesses, each followed by one ALU pad.
  ASSERT_EQ(out.size(), 6u);
  EXPECT_EQ(out[0].op, OpClass::kLoad);
  EXPECT_EQ(out[0].addr, 0x7f001000u);
  EXPECT_EQ(out[0].dep_dist, 5);
  EXPECT_EQ(out[1].op, OpClass::kAlu);
  EXPECT_EQ(out[1].addr, kNoAddr);
  EXPECT_EQ(out[2].op, OpClass::kStore);  // lowercase s accepted
  EXPECT_EQ(out[2].addr, 0x7f002040u);
  EXPECT_EQ(out[2].dep_dist, 0);  // stores carry no dep distance
  EXPECT_EQ(out[4].op, OpClass::kLoad);
  EXPECT_EQ(out[4].addr, 0x7f001000u);
}

TEST(Convert, MalformedLineFailsWithLineNumber) {
  std::istringstream text("R 0x1000\nQ 0x2000\n");
  ConvertOptions opts;
  std::vector<Instr> out;
  std::string err;
  EXPECT_FALSE(convert_text_trace(text, "rw", opts, out, &err));
  EXPECT_NE(err.find("line 2"), std::string::npos) << err;
}

TEST(Convert, ChampsimMalformedLinesFailWithLineNumber) {
  ConvertOptions opts;
  const struct {
    const char* text;
    const char* needle;
  } cases[] = {
      // Missing access type.
      {"0x400 0x1000 L\n0x404 0x2000\n", "line 2"},
      // Bad type letter.
      {"0x400 0x1000 X\n", "access type must be L or S"},
      // Multi-char type token.
      {"0x400 0x1000 LS\n", "access type must be L or S"},
      // Non-hex instruction pointer.
      {"zzz 0x1000 L\n", "bad hex instruction pointer"},
      // Non-hex data address.
      {"0x400 0xqq L\n", "bad hex address"},
      // Trailing garbage.
      {"0x400 0x1000 L extra\n", "trailing token"},
  };
  for (const auto& c : cases) {
    std::istringstream text(c.text);
    std::vector<Instr> out;
    std::string err;
    EXPECT_FALSE(convert_text_trace(text, "champsim", opts, out, &err))
        << c.text;
    EXPECT_NE(err.find(c.needle), std::string::npos) << err;
  }
}

TEST(Convert, CacheFilterRewritesHitsPreservesCount) {
  // Two lines ping-ponged: first touches miss, every repeat hits.
  std::vector<Instr> instrs;
  for (int i = 0; i < 10; ++i) {
    instrs.push_back({OpClass::kLoad, 0x1000, 1});
    instrs.push_back({OpClass::kStore, 0x2000, 0});
  }
  VectorTraceSource src(instrs);
  CacheFilter l1(32 * 1024, 64, 4);
  FilteredTraceSource filtered(src, l1);
  std::vector<Instr> out;
  Instr instr;
  while (filtered.next(instr)) out.push_back(instr);
  ASSERT_EQ(out.size(), instrs.size());  // count preserved exactly
  EXPECT_EQ(l1.misses(), 2u);
  EXPECT_EQ(l1.hits(), 18u);
  EXPECT_EQ(out[0].op, OpClass::kLoad);  // misses keep their identity
  EXPECT_EQ(out[2].op, OpClass::kAlu);   // hits become ALU filler
  EXPECT_EQ(out[2].addr, kNoAddr);
  EXPECT_EQ(out[2].dep_dist, 0);
}

// --- plans -----------------------------------------------------------------

struct PlannedTrace {
  explicit PlannedTrace(std::uint64_t n = 600'000)
      : file(tmp_path("plan")), count(n) {
    TraceGenerator gen(*find_profile("mcf-like"), 7);
    std::string err;
    if (!write_trace_file_v2(file.path, gen, count, &err))
      throw std::runtime_error(err);
  }
  TempFile file;
  std::uint64_t count;
};

bool plans_identical(const SamplePlan& a, const SamplePlan& b) {
  if (a.exhaustive != b.exhaustive || a.assignment != b.assignment ||
      a.regions.size() != b.regions.size() ||
      a.clusters.size() != b.clusters.size())
    return false;
  for (std::size_t i = 0; i < a.regions.size(); ++i) {
    if (a.regions[i].start != b.regions[i].start ||
        a.regions[i].length != b.regions[i].length ||
        a.regions[i].v != b.regions[i].v)  // bitwise double comparison
      return false;
  }
  for (std::size_t c = 0; c < a.clusters.size(); ++c) {
    if (a.clusters[c].representative != b.clusters[c].representative ||
        a.clusters[c].weight != b.clusters[c].weight ||
        a.clusters[c].members != b.clusters[c].members)
      return false;
  }
  return true;
}

SampleConfig small_sample_config() {
  SampleConfig cfg;
  cfg.region_instructions = 50'000;
  cfg.clusters = 3;
  cfg.warmup_instructions = 10'000;
  cfg.seed = 42;
  return cfg;
}

TEST(SamplePlan, DeterministicAcrossRunsAndThreads) {
  PlannedTrace t;
  const SampleConfig cfg = small_sample_config();
  FileTraceSource src(t.file.path);
  const SamplePlan ref = build_sample_plan(src, cfg);
  EXPECT_FALSE(ref.exhaustive);
  EXPECT_EQ(ref.regions.size(), t.count / cfg.region_instructions);
  EXPECT_EQ(ref.clusters.size(), cfg.clusters);

  // Re-planning in this thread and in N concurrent threads must reproduce
  // the identical plan — clustering is single-threaded strict-< by
  // contract, so thread count cannot leak into the result.
  std::vector<SamplePlan> plans(4);
  std::vector<std::thread> workers;
  for (std::size_t i = 0; i < plans.size(); ++i)
    workers.emplace_back([&, i] {
      FileTraceSource mine(t.file.path);
      plans[i] = build_sample_plan(mine, cfg);
    });
  for (std::thread& w : workers) w.join();
  for (const SamplePlan& p : plans) EXPECT_TRUE(plans_identical(ref, p));

  // A different seed is allowed to pick a different plan (and on this
  // trace does pick different representatives or members eventually);
  // at minimum it must still be a valid partition.
  SampleConfig reseeded = cfg;
  reseeded.seed = 1234;
  FileTraceSource again(t.file.path);
  const SamplePlan other = build_sample_plan(again, reseeded);
  std::size_t members = 0;
  for (const SampleCluster& c : other.clusters) members += c.members.size();
  EXPECT_EQ(members, other.regions.size());
}

TEST(SamplePlan, SignatureCacheHitIsByteIdenticalAndStaleCacheRejected) {
  PlannedTrace t;
  SampleConfig cfg = small_sample_config();
  TempFile cache(tmp_path("sigs"));
  cfg.signature_cache = cache.path;

  FileTraceSource src(t.file.path);
  const SamplePlan scanned = build_sample_plan(src, cfg);  // miss: scan+save
  const std::uint64_t digest = src.info().stream_digest;

  // Cache file exists and reloads to the same signatures bit-for-bit.
  auto reloaded = load_region_signatures(cache.path, digest,
                                         cfg.region_instructions, 64);
  ASSERT_TRUE(reloaded.has_value());
  ASSERT_EQ(reloaded->size(), scanned.regions.size());
  for (std::size_t i = 0; i < reloaded->size(); ++i)
    EXPECT_EQ((*reloaded)[i].v, scanned.regions[i].v);

  // A hit produces the identical plan without touching the trace cursor.
  FileTraceSource hit(t.file.path);
  const SamplePlan cached = build_sample_plan(hit, cfg);
  EXPECT_TRUE(plans_identical(scanned, cached));

  // Stale keys must be rejected: wrong digest, wrong slicing.
  EXPECT_FALSE(load_region_signatures(cache.path, digest ^ 1,
                                      cfg.region_instructions, 64));
  EXPECT_FALSE(load_region_signatures(cache.path, digest,
                                      cfg.region_instructions * 2, 64));
  EXPECT_FALSE(
      load_region_signatures(cache.path, digest, cfg.region_instructions, 32));
  // And a truncated cache file is a miss, not a crash.
  {
    std::ifstream in(cache.path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    std::ofstream out(cache.path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  EXPECT_FALSE(load_region_signatures(cache.path, digest,
                                      cfg.region_instructions, 64));
}

// --- sampled simulation ----------------------------------------------------

SimConfig sim_config() {
  SimConfig cfg;
  cfg.run_seed = 1;
  return cfg;
}

TEST(SampledRun, DegenerateClustersEqualsRegionsIsBitIdenticalToFull) {
  PlannedTrace t(300'000);
  SampleConfig cfg = small_sample_config();
  cfg.clusters = 100;  // >= 6 regions -> exhaustive

  for (const char* policy : {"none", "mapg"}) {
    FileTraceSource src(t.file.path);
    SamplePlan plan = build_sample_plan(src, cfg);
    EXPECT_TRUE(plan.exhaustive);
    SampledRunner runner(sim_config(), src, std::move(plan), "trc");
    SampledResult sampled = runner.run(policy);
    ASSERT_TRUE(sampled.exact);
    ASSERT_TRUE(sampled.full.has_value());

    FileTraceSource direct_src(t.file.path);
    SimConfig direct_cfg = sim_config();
    direct_cfg.warmup_instructions = 0;
    direct_cfg.instructions = t.count;
    const SimResult direct =
        Simulator(direct_cfg).run(direct_src, "trc", policy);
    EXPECT_EQ(dump(*sampled.full), dump(direct)) << policy;

    // Exact results report zero-width intervals.
    for (const MetricEstimate& m : sampled.metrics) {
      EXPECT_EQ(m.stderr_, 0.0) << m.name;
      EXPECT_EQ(m.ci_lo, m.ci_hi) << m.name;
    }
  }
}

TEST(SampledRun, ProjectionBracketsAndTracksTheFullRun) {
  // Regions must be long enough for the dispersion model's brackets to be
  // meaningful (TRACE.md §9); this axis mirrors bench/micro_sampling's
  // smoke configuration, where measured coverage holds for every timing
  // metric.
  PlannedTrace t(2'000'000);  // 20 regions of 100k
  SampleConfig cfg;
  cfg.region_instructions = 100'000;
  cfg.clusters = 4;
  cfg.warmup_instructions = 20'000;
  cfg.seed = 42;

  FileTraceSource src(t.file.path);
  SamplePlan plan = build_sample_plan(src, cfg);
  ASSERT_FALSE(plan.exhaustive);
  SampledRunner runner(sim_config(), src, std::move(plan), "trc");
  const SampledResult sampled = runner.run("mapg");
  EXPECT_FALSE(sampled.exact);
  EXPECT_LT(sampled.instructions_simulated, t.count);
  EXPECT_EQ(sampled.instructions_projected, t.count);

  FileTraceSource direct_src(t.file.path);
  SimConfig direct_cfg = sim_config();
  direct_cfg.warmup_instructions = 0;
  direct_cfg.instructions = t.count;
  const SimResult full = Simulator(direct_cfg).run(direct_src, "trc", "mapg");

  const MetricEstimate* instrs = sampled.find("instructions");
  ASSERT_NE(instrs, nullptr);
  EXPECT_EQ(instrs->value, static_cast<double>(t.count));  // exact by design
  EXPECT_EQ(instrs->stderr_, 0.0);

  struct Check {
    const char* name;
    double full_value;
  } checks[] = {
      {"cycles", static_cast<double>(full.core.cycles)},
      {"ipc", full.ipc()},
      {"mpki", full.mpki()},
      {"gated_time_fraction", full.gated_time_fraction()},
  };
  for (const Check& c : checks) {
    const MetricEstimate* m = sampled.find(c.name);
    ASSERT_NE(m, nullptr) << c.name;
    // Within 5% of truth on this axis, and the 95% bracket is ordered and
    // contains the estimate.
    EXPECT_NEAR(m->value, c.full_value, 0.05 * std::abs(c.full_value) + 1e-9)
        << c.name;
    EXPECT_LE(m->ci_lo, m->value) << c.name;
    EXPECT_GE(m->ci_hi, m->value) << c.name;
    // The bracket covers the full-run value on these timing metrics (the
    // documented energy-bias caveat is exercised by bench/micro_sampling,
    // not asserted here).
    EXPECT_GE(c.full_value, m->ci_lo - 1e-9) << c.name;
    EXPECT_LE(c.full_value, m->ci_hi + 1e-9) << c.name;
  }

  // Re-running the identical spec projects identically (timelines are
  // cached per representative, and replay is deterministic).
  const SampledResult again = runner.run("mapg");
  for (std::size_t i = 0; i < sampled.metrics.size(); ++i) {
    EXPECT_EQ(sampled.metrics[i].value, again.metrics[i].value);
    EXPECT_EQ(sampled.metrics[i].stderr_, again.metrics[i].stderr_);
  }
}

// --- engine identity -------------------------------------------------------

TEST(TraceBindingIdentity, DigestKeysTheCachePathDoesNot) {
  const SimConfig cfg = sim_config();
  const WorkloadProfile& profile = *find_profile("mcf-like");

  TraceBinding a;
  a.path = "/tmp/a.trc";
  a.digest_hex = "00deadbeef001122";
  a.offset = 0;
  a.name = "trc";
  TraceBinding renamed = a;
  renamed.path = "/somewhere/else.trc";  // same content, different path
  TraceBinding edited = a;
  edited.digest_hex = "ffffffffffffffff";  // different content
  TraceBinding shifted = a;
  shifted.offset = 1'000'000;  // different window

  const std::string key_plain = cache_key(cfg, profile, "mapg");
  const std::string key_a = cache_key(cfg, profile, "mapg", &a);
  const std::string key_renamed = cache_key(cfg, profile, "mapg", &renamed);
  const std::string key_edited = cache_key(cfg, profile, "mapg", &edited);
  const std::string key_shifted = cache_key(cfg, profile, "mapg", &shifted);

  EXPECT_NE(key_a, key_plain);    // trace-bound is a distinct experiment
  EXPECT_EQ(key_a, key_renamed);  // renaming never splits the cache
  EXPECT_NE(key_a, key_edited);   // content changes always miss
  EXPECT_NE(key_a, key_shifted);  // windows are distinct cells
}

}  // namespace
}  // namespace mapg
