// Tests for the L2 stream prefetcher: training, direction handling,
// timeliness via MSHR merges, pollution accounting, and the MAPG
// interaction (prefetching removes stalls -> less gating, faster runs).
#include <gtest/gtest.h>

#include <vector>

#include "core/sim.h"
#include "exec/runner.h"
#include "mem/hierarchy.h"
#include "mem/prefetcher.h"

namespace mapg {
namespace {

PrefetcherConfig on(std::uint32_t degree = 2) {
  return PrefetcherConfig{.enable = true, .degree = degree};
}

TEST(StreamPrefetcher, DisabledIssuesNothing) {
  StreamPrefetcher p(PrefetcherConfig{});
  std::vector<Addr> out;
  p.observe(0, 64, out);
  p.observe(64, 64, out);
  p.observe(128, 64, out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(p.stats().issued, 0u);
}

TEST(StreamPrefetcher, AscendingStreamTrainsAndIssues) {
  StreamPrefetcher p(on(2));
  std::vector<Addr> out;
  p.observe(1000 * 64, 64, out);  // allocates a stream
  EXPECT_TRUE(out.empty());
  p.observe(1001 * 64, 64, out);  // confirms: prefetch 1002, 1003
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 1002u * 64);
  EXPECT_EQ(out[1], 1003u * 64);
  out.clear();
  p.observe(1002 * 64, 64, out);  // window slides: only 1004 is new
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 1004u * 64);
  EXPECT_EQ(p.stats().trained, 2u);
}

TEST(StreamPrefetcher, DescendingStreamDetected) {
  StreamPrefetcher p(on(2));
  std::vector<Addr> out;
  p.observe(1000 * 64, 64, out);
  p.observe(999 * 64, 64, out);  // one below: descending confirmation
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 998u * 64);
  EXPECT_EQ(out[1], 997u * 64);
}

TEST(StreamPrefetcher, DescendingStopsAtAddressZero) {
  StreamPrefetcher p(on(4));
  std::vector<Addr> out;
  p.observe(2 * 64, 64, out);
  p.observe(1 * 64, 64, out);  // descending; only line 0 remains
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 0u);
}

TEST(StreamPrefetcher, RandomMissesDoNotTrain) {
  StreamPrefetcher p(on(2));
  std::vector<Addr> out;
  Prng prng(3);
  for (int i = 0; i < 1000; ++i)
    p.observe(prng.below(1 << 20) * 64 * 7, 64, out);
  // Random lines essentially never land exactly one line apart.
  EXPECT_LT(p.stats().issued, 20u);
}

TEST(StreamPrefetcher, TracksMultipleConcurrentStreams) {
  StreamPrefetcher p(on(1));
  std::vector<Addr> out;
  const Addr base_a = 1 << 20, base_b = 1 << 24;
  p.observe(base_a, 64, out);
  p.observe(base_b, 64, out);
  out.clear();
  p.observe(base_a + 64, 64, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], base_a + 128);
  out.clear();
  p.observe(base_b + 64, 64, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], base_b + 128);
}

TEST(CacheFill, AllocatesWithoutDemandStats) {
  Cache c(CacheConfig{.name = "t",
                      .size_bytes = 512,
                      .assoc = 2,
                      .line_bytes = 64,
                      .hit_latency = 1});
  c.fill(0);
  EXPECT_TRUE(c.contains(0));
  EXPECT_EQ(c.stats().accesses(), 0u);
  EXPECT_EQ(c.stats().prefetch_fills, 1u);
  // Filling a resident line is a no-op.
  c.fill(0);
  EXPECT_EQ(c.stats().prefetch_fills, 1u);
  // Fill evicting a dirty line produces a writeback.
  c.access(256, true);  // same set (4 sets? 512/64/2 = 4 sets; 256 -> set 0)
  c.fill(512);
  c.fill(768);
  EXPECT_GE(c.stats().writebacks, 1u);
}

TEST(HierarchyPrefetch, StreamLoadsMergeIntoPrefetches) {
  HierarchyConfig cfg;  // default 32K/1M hierarchy
  cfg.prefetch = on(4);
  MemoryHierarchy m(cfg);
  // Walk lines sequentially with big gaps in time: after training, demand
  // misses should ride prefetched fills (merged) or hit in L2.
  Cycle t = 1000;
  std::uint64_t dram_demand_late = 0;
  for (int i = 0; i < 64; ++i) {
    const MemAccessResult r =
        m.load((1 << 22) + static_cast<Addr>(i) * 64, t);
    if (i > 8 && r.served_by == ServedBy::kDram && !r.merged)
      ++dram_demand_late;
    t += 2000;  // plenty of time for fills to land
  }
  EXPECT_GT(m.stats().prefetch_issued, 20u);
  // Once the stream is established, demand misses all but vanish.
  EXPECT_LT(dram_demand_late, 5u);
  EXPECT_GT(m.l2_stats().prefetch_fills, 20u);
}

TEST(HierarchyPrefetch, TimelinessMattersForBackToBackMisses) {
  HierarchyConfig cfg;
  cfg.prefetch = on(2);
  MemoryHierarchy m(cfg);
  // Back-to-back sequential misses: the prefetch for line i+1 was issued at
  // line i's miss, so the merge completes EARLIER than a fresh miss would.
  Cycle t = 1000;
  m.load(1 << 22, t);
  m.load((1 << 22) + 64, t + 1);
  const MemAccessResult merged = m.load((1 << 22) + 128, t + 2);
  EXPECT_TRUE(merged.merged);
  EXPECT_TRUE(merged.prefetched);
  EXPECT_EQ(m.stats().prefetch_merges, 1u);

  // A cold miss at the same cycle to an untracked region takes longer.
  const MemAccessResult cold = m.load(1 << 26, t + 3);
  EXPECT_GT(cold.complete, merged.complete);
}

TEST(HierarchyPrefetch, EndToEndSpeedsUpStreamingAndShrinksGating) {
  SimConfig base;
  base.instructions = 300'000;
  base.warmup_instructions = 100'000;
  SimConfig pf = base;
  pf.mem.prefetch = on(4);

  const WorkloadProfile* p = find_profile("libquantum-like");
  const SimResult no_pf = Simulator(base).run(*p, "mapg");
  const SimResult with_pf = Simulator(pf).run(*p, "mapg");

  // Prefetching accelerates the streaming workload...
  EXPECT_LT(with_pf.core.cycles, no_pf.core.cycles * 0.9);
  // ...which necessarily removes gateable stall time.
  EXPECT_LT(with_pf.gating.activity.gated_cycles,
            no_pf.gating.activity.gated_cycles);
  EXPECT_GT(with_pf.hier.prefetch_issued, 1000u);
}

TEST(HierarchyPrefetch, PointerChaseUnaffected) {
  SimConfig base;
  base.instructions = 200'000;
  base.warmup_instructions = 50'000;
  SimConfig pf = base;
  pf.mem.prefetch = on(4);

  const WorkloadProfile* p = find_profile("mcf-like");
  const SimResult no_pf = Simulator(base).run(*p, "mapg");
  const SimResult with_pf = Simulator(pf).run(*p, "mapg");
  // Random pointer chasing gives the stream table nothing to train on:
  // performance changes by under 3%.
  const double ratio = static_cast<double>(with_pf.core.cycles) /
                       static_cast<double>(no_pf.core.cycles);
  EXPECT_NEAR(ratio, 1.0, 0.03);
}

}  // namespace
}  // namespace mapg
