// Observability layer (src/obs): sharded metric merge correctness across
// threads, ring-buffer overflow discipline, Chrome-trace JSON validity
// (parsed back with the exec JSON parser), and the report sinks.
#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "exec/json.h"
#include "obs/event_tracer.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/report.h"
#include "obs/scoped_timer.h"

namespace mapg::obs {
namespace {

// The registry and tracer are process-global; every test starts from zeroed
// values and a stopped tracer so ordering doesn't matter.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    EventTracer::instance().stop();
    EventTracer::instance().clear();
    MetricsRegistry::instance().reset_values();
  }
};

TEST_F(ObsTest, CounterMergesAcrossThreads) {
  Counter& c = MetricsRegistry::instance().counter("test.counter");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST_F(ObsTest, CounterAddAndReset) {
  Counter& c = MetricsRegistry::instance().counter("test.counter.add");
  c.inc(41);
  c.inc();
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(ObsTest, GaugeSetAndAdd) {
  Gauge& g = MetricsRegistry::instance().gauge("test.gauge");
  g.set(7);
  EXPECT_EQ(g.value(), 7);
  g.add(-10);
  EXPECT_EQ(g.value(), -3);
}

TEST_F(ObsTest, HistogramMergesAcrossThreads) {
  HistogramMetric& h = MetricsRegistry::instance().histogram("test.hist");
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&h] {
      for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
    });
  for (auto& t : threads) t.join();

  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, kThreads * 1000u);
  EXPECT_EQ(s.sum, kThreads * 500'500u);
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 1000u);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t b : s.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, s.count);
  EXPECT_DOUBLE_EQ(s.mean(), 500.5);
  // Quantiles land inside the observed range and are ordered.
  EXPECT_GE(s.quantile(0.5), s.min);
  EXPECT_LE(s.quantile(0.5), s.quantile(0.95));
  EXPECT_LE(s.quantile(0.95), s.max);
}

TEST_F(ObsTest, HistogramBucketLayout) {
  EXPECT_EQ(hist_bucket_of(0), 0u);
  EXPECT_EQ(hist_bucket_of(1), 1u);
  EXPECT_EQ(hist_bucket_of(2), 2u);
  EXPECT_EQ(hist_bucket_of(3), 2u);
  EXPECT_EQ(hist_bucket_of(4), 3u);
  EXPECT_EQ(hist_bucket_of(~std::uint64_t{0}), 64u);
  EXPECT_EQ(hist_bucket_lo(2), 2u);
  EXPECT_EQ(hist_bucket_lo(10), 512u);
}

TEST_F(ObsTest, SnapshotIsSortedByName) {
  MetricsRegistry& reg = MetricsRegistry::instance();
  reg.counter("test.z").inc();
  reg.counter("test.a").inc();
  reg.counter("test.m").inc();
  const MetricsSnapshot s = reg.snapshot();
  for (std::size_t i = 1; i < s.counters.size(); ++i)
    EXPECT_LT(s.counters[i - 1].first, s.counters[i].first);
}

TEST_F(ObsTest, MetricsJsonParsesAndRoundTripsValues) {
  MetricsRegistry& reg = MetricsRegistry::instance();
  reg.counter("test.json.counter").inc(12345);
  reg.gauge("test.json.gauge").set(-7);
  reg.histogram("test.json.hist").record(100);

  std::string err;
  const std::optional<Json> doc = Json::parse(metrics_json_string(), &err);
  ASSERT_TRUE(doc.has_value()) << err;
  EXPECT_EQ(doc->get("counters").get("test.json.counter").as_u64(), 12345u);
  EXPECT_EQ(doc->get("gauges").get("test.json.gauge").as_i64(), -7);
  const Json& h = doc->get("histograms").get("test.json.hist");
  EXPECT_EQ(h.get("count").as_u64(), 1u);
  EXPECT_EQ(h.get("sum").as_u64(), 100u);
  EXPECT_EQ(h.get("min").as_u64(), 100u);
  EXPECT_EQ(h.get("max").as_u64(), 100u);

  // Canonical re-dump of the parsed document must itself parse — the
  // snapshot JSON round-trips through the exec parser.
  const std::optional<Json> again = Json::parse(doc->dump(), &err);
  ASSERT_TRUE(again.has_value()) << err;
  EXPECT_EQ(again->dump(), doc->dump());
}

TEST_F(ObsTest, PrintMetricsTableIsAlignedAndSorted) {
  MetricsRegistry& reg = MetricsRegistry::instance();
  reg.counter("test.table.b").inc(2);
  reg.counter("test.table.a").inc(1);
  reg.gauge("test.table.g").set(5);
  std::ostringstream os;
  print_metrics_table(os, reg.snapshot());
  const std::string out = os.str();
  const std::size_t pa = out.find("test.table.a");
  const std::size_t pb = out.find("test.table.b");
  const std::size_t pg = out.find("test.table.g");
  ASSERT_NE(pa, std::string::npos);
  ASSERT_NE(pb, std::string::npos);
  ASSERT_NE(pg, std::string::npos);
  EXPECT_LT(pa, pb);
  EXPECT_LT(pb, pg);
}

TEST_F(ObsTest, TracerRecordsCompleteEvents) {
  EventTracer& tracer = EventTracer::instance();
  tracer.start(64);
  tracer.complete("span", "test", 1000, 2000,
                  TraceArgs().add("workload", "mcf-like").add("ok", true)
                      .json());
  tracer.counter("test.counter", TraceArgs().add("value", 3).json());
  tracer.stop();

  std::ostringstream os;
  tracer.write_json(os);
  std::string err;
  const std::optional<Json> doc = Json::parse(os.str(), &err);
  ASSERT_TRUE(doc.has_value()) << err;
  const Json& events = doc->get("traceEvents");
  ASSERT_TRUE(events.is_array());
  ASSERT_EQ(events.size(), 2u);

  const Json& span = events.at(0);
  EXPECT_EQ(span.get("name").as_string(), "span");
  EXPECT_EQ(span.get("ph").as_string(), "X");
  EXPECT_DOUBLE_EQ(span.get("ts").as_double(), 1.0);    // 1000 ns = 1 us
  EXPECT_DOUBLE_EQ(span.get("dur").as_double(), 2.0);
  EXPECT_EQ(span.get("args").get("workload").as_string(), "mcf-like");
  EXPECT_TRUE(span.get("args").get("ok").as_bool());

  const Json& counter = events.at(1);
  EXPECT_EQ(counter.get("ph").as_string(), "C");
  EXPECT_EQ(counter.get("args").get("value").as_u64(), 3u);
}

TEST_F(ObsTest, TracerOverflowDropsOldestAndCounts) {
  EventTracer& tracer = EventTracer::instance();
  tracer.start(4);
  for (int i = 0; i < 10; ++i)
    tracer.instant("e" + std::to_string(i), "test");
  tracer.stop();

  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
  EXPECT_EQ(MetricsRegistry::instance().counter("trace.dropped").value(), 6u);

  std::ostringstream os;
  tracer.write_json(os);
  const std::string out = os.str();
  // Oldest gone, newest retained.
  EXPECT_EQ(out.find("\"e0\""), std::string::npos);
  EXPECT_EQ(out.find("\"e5\""), std::string::npos);
  EXPECT_NE(out.find("\"e6\""), std::string::npos);
  EXPECT_NE(out.find("\"e9\""), std::string::npos);
}

TEST_F(ObsTest, TracerDisabledRecordsNothing) {
  EventTracer& tracer = EventTracer::instance();
  ASSERT_FALSE(tracer.enabled());
  tracer.instant("ignored", "test");
  tracer.complete("ignored", "test", 0, 1);
  EXPECT_EQ(tracer.size(), 0u);
}

TEST_F(ObsTest, JsonQuoteEscapes) {
  EXPECT_EQ(json_quote("plain"), "\"plain\"");
  EXPECT_EQ(json_quote("a\"b\\c"), "\"a\\\"b\\\\c\"");
  EXPECT_EQ(json_quote("x\ny"), "\"x\\ny\"");
  std::string err;
  EXPECT_TRUE(Json::parse(json_quote("weird \"\\\n\t\x01 payload"), &err)
                  .has_value())
      << err;
}

TEST_F(ObsTest, ScopedTimerRecordsHistogramAndSpan) {
  EventTracer& tracer = EventTracer::instance();
  tracer.start(16);
  HistogramMetric& h = MetricsRegistry::instance().histogram("test.span.ns");
  {
    ScopedTimer timer(&h, "test.span", "test");
  }
  tracer.stop();
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(tracer.size(), 1u);
  std::ostringstream os;
  tracer.write_json(os);
  EXPECT_NE(os.str().find("\"test.span\""), std::string::npos);
}

TEST_F(ObsTest, EmptyTraceIsValidJson) {
  std::ostringstream os;
  EventTracer::instance().write_json(os);
  std::string err;
  const std::optional<Json> doc = Json::parse(os.str(), &err);
  ASSERT_TRUE(doc.has_value()) << err;
  EXPECT_EQ(doc->get("traceEvents").size(), 0u);
}

#if MAPG_OBS_ENABLED
TEST_F(ObsTest, MacrosReachTheRegistry) {
  MAPG_OBS_COUNTER_INC("test.macro.counter");
  MAPG_OBS_COUNTER_ADD("test.macro.counter", 9);
  MAPG_OBS_GAUGE_SET("test.macro.gauge", 17);
  MAPG_OBS_HIST_RECORD("test.macro.hist", 256);
  {
    MAPG_OBS_SCOPED_TIMER("test.macro.timer.ns", "test");
  }
  MetricsRegistry& reg = MetricsRegistry::instance();
  EXPECT_EQ(reg.counter("test.macro.counter").value(), 10u);
  EXPECT_EQ(reg.gauge("test.macro.gauge").value(), 17);
  EXPECT_EQ(reg.histogram("test.macro.hist").snapshot().count, 1u);
  EXPECT_EQ(reg.histogram("test.macro.timer.ns").snapshot().count, 1u);
}
#endif

}  // namespace
}  // namespace mapg::obs
