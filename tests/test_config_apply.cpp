// Tests for the textual-config applier and the multi-seed replication API.
#include <gtest/gtest.h>

#include "exec/runner.h"
#include "multicore/config_apply.h"

namespace mapg {
namespace {

TEST(ConfigApply, DefaultsUntouchedByEmptyConfig) {
  KvConfig kv;
  std::vector<std::string> unknown;
  const SimConfig cfg = apply_sim_config(kv, SimConfig{}, &unknown);
  const SimConfig ref;
  EXPECT_TRUE(unknown.empty());
  EXPECT_EQ(cfg.instructions, ref.instructions);
  EXPECT_EQ(cfg.mem.l2.size_bytes, ref.mem.l2.size_bytes);
  EXPECT_EQ(cfg.pg.wakeup_stages, ref.pg.wakeup_stages);
  EXPECT_DOUBLE_EQ(cfg.tech.core_leakage_w, ref.tech.core_leakage_w);
}

TEST(ConfigApply, AppliesEveryCategory) {
  KvConfig kv;
  std::string err;
  ASSERT_TRUE(kv.parse_text(R"(
    instructions = 123456
    warmup = 1000
    seed = 7
    core.mlp_window = 4
    l1.size_kib = 64
    l2.size_kib = 2048
    l2.assoc = 8
    dram.channels = 1
    dram.t_cl = 50
    prefetch.enable = 1
    prefetch.degree = 4
    tech.freq_ghz = 2.0
    tech.core_leakage_w = 0.8
    pg.stages = 16
    pg.overhead_scale = 2.0
    dram_energy.read_nj = 20
    thermal.enable = 1
    thermal.ambient_c = 55
  )", &err)) << err;

  std::vector<std::string> unknown;
  const SimConfig cfg = apply_sim_config(kv, SimConfig{}, &unknown);
  EXPECT_TRUE(unknown.empty());
  EXPECT_EQ(cfg.instructions, 123456u);
  EXPECT_EQ(cfg.warmup_instructions, 1000u);
  EXPECT_EQ(cfg.run_seed, 7u);
  EXPECT_EQ(cfg.core.mlp_window, 4u);
  EXPECT_EQ(cfg.mem.l1d.size_bytes, 64u * 1024);
  EXPECT_EQ(cfg.mem.l2.size_bytes, 2048u * 1024);
  EXPECT_EQ(cfg.mem.l2.assoc, 8u);
  EXPECT_EQ(cfg.mem.dram.channels, 1u);
  EXPECT_EQ(cfg.mem.dram.t_cl, 50u);
  EXPECT_TRUE(cfg.mem.prefetch.enable);
  EXPECT_EQ(cfg.mem.prefetch.degree, 4u);
  EXPECT_DOUBLE_EQ(cfg.tech.freq_ghz, 2.0);
  EXPECT_DOUBLE_EQ(cfg.tech.core_leakage_w, 0.8);
  EXPECT_EQ(cfg.pg.wakeup_stages, 16u);
  EXPECT_DOUBLE_EQ(cfg.pg.overhead_scale, 2.0);
  EXPECT_DOUBLE_EQ(cfg.dram_energy.read_nj, 20.0);
  EXPECT_TRUE(cfg.thermal.enable);
  EXPECT_DOUBLE_EQ(cfg.thermal.t_ambient_c, 55.0);
  EXPECT_TRUE(cfg.mem.valid());
}

TEST(ConfigApply, LineBytesAppliesToAllLevels) {
  KvConfig kv;
  kv.set("mem.line_bytes", "128");
  const SimConfig cfg = apply_sim_config(kv);
  EXPECT_EQ(cfg.mem.l1d.line_bytes, 128u);
  EXPECT_EQ(cfg.mem.l2.line_bytes, 128u);
  EXPECT_EQ(cfg.mem.dram.line_bytes, 128u);
  EXPECT_TRUE(cfg.mem.valid());
}

TEST(ConfigApply, ReportsUnknownKeys) {
  KvConfig kv;
  kv.set("l2.size_kb", "512");  // typo: _kb instead of _kib
  kv.set("run.anything", "1");  // reserved: never reported
  kv.set("workload", "mcf-like");  // tool key: never reported
  std::vector<std::string> unknown;
  apply_sim_config(kv, SimConfig{}, &unknown);
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "l2.size_kb");
}

TEST(ConfigApply, MulticoreKeys) {
  KvConfig kv;
  kv.set("cores", "8");
  kv.set("arbiter_slots", "2");
  kv.set("addr_stride_log2", "38");
  kv.set("instructions", "5000");
  std::vector<std::string> unknown;
  const MulticoreConfig cfg =
      apply_multicore_config(kv, MulticoreConfig{}, &unknown);
  EXPECT_TRUE(unknown.empty());
  EXPECT_EQ(cfg.num_cores, 8u);
  EXPECT_EQ(cfg.wake_arbiter_slots, 2u);
  EXPECT_EQ(cfg.core_addr_stride, 1ULL << 38);
  EXPECT_EQ(cfg.instructions_per_core, 5000u);
}

TEST(ConfigApply, MulticoreKeysAcceptedBySimWithoutWarning) {
  KvConfig kv;
  kv.set("cores", "1");
  std::vector<std::string> unknown;
  apply_sim_config(kv, SimConfig{}, &unknown);
  EXPECT_TRUE(unknown.empty());
}

TEST(Replicate, AggregatesAcrossSeeds) {
  SimConfig cfg;
  cfg.instructions = 100'000;
  cfg.warmup_instructions = 30'000;
  ExperimentRunner runner(cfg);
  const WorkloadProfile* p = find_profile("omnetpp-like");
  const ReplicatedComparison r = runner.replicate(*p, "mapg", 4);
  EXPECT_EQ(r.replicates(), 4u);
  EXPECT_EQ(r.policy, "mapg");
  EXPECT_EQ(r.workload, "omnetpp-like");
  // Savings are consistently positive with a tight spread across draws.
  EXPECT_GT(r.core_energy_savings.mean(), 0.15);
  EXPECT_LT(r.core_energy_savings.stdev(),
            0.1 * r.core_energy_savings.mean() + 0.01);
  EXPECT_GT(r.core_energy_savings.min(), 0.0);
  EXPECT_LT(r.runtime_overhead.max(), 0.01);
}

TEST(Replicate, SingleSeedMatchesCompareOne) {
  SimConfig cfg;
  cfg.instructions = 100'000;
  cfg.warmup_instructions = 30'000;
  ExperimentRunner runner(cfg);
  const WorkloadProfile* p = find_profile("gcc-like");
  const ReplicatedComparison rep = runner.replicate(*p, "mapg", 1);
  const Comparison one = runner.compare_one(*p, "mapg");
  EXPECT_DOUBLE_EQ(rep.core_energy_savings.mean(), one.core_energy_savings);
  EXPECT_DOUBLE_EQ(rep.runtime_overhead.mean(), one.runtime_overhead);
}

}  // namespace
}  // namespace mapg
