// Tests for the leakage-temperature feedback: RC node math, leakage
// multiplier, and the end-to-end amplification of gating savings.
#include <gtest/gtest.h>

#include <cmath>

#include "core/sim.h"
#include "power/thermal.h"

namespace mapg {
namespace {

ThermalConfig cfg() {
  ThermalConfig c;
  c.enable = true;
  return c;
}

TEST(ThermalModel, StartsAtAmbient) {
  ThermalModel m(cfg(), TechParams{});
  EXPECT_DOUBLE_EQ(m.temperature_c(), cfg().t_ambient_c);
}

TEST(ThermalModel, SteadyStateUnderConstantPower) {
  ThermalModel m(cfg(), TechParams{});
  const double p = 1.0;  // W
  for (int i = 0; i < 1000; ++i) m.step(p, 1e-4);  // 100 ms >> tau = 1 ms
  EXPECT_NEAR(m.temperature_c(), m.steady_state_c(p), 1e-6);
  EXPECT_NEAR(m.steady_state_c(p),
              cfg().t_ambient_c + cfg().r_th_k_per_w, 1e-12);
}

TEST(ThermalModel, ExponentialApproachIsExact) {
  ThermalModel m(cfg(), TechParams{});
  const double p = 0.5;
  const double t0 = m.temperature_c();
  const double target = m.steady_state_c(p);
  const double tau_s = cfg().tau_ms * 1e-3;
  m.step(p, tau_s);  // exactly one time constant
  EXPECT_NEAR(m.temperature_c(),
              target + (t0 - target) * std::exp(-1.0), 1e-9);
}

TEST(ThermalModel, StepIsStableForHugeDt) {
  ThermalModel m(cfg(), TechParams{});
  m.step(2.0, 100.0);  // 100 s step: must land exactly on steady state
  EXPECT_NEAR(m.temperature_c(), m.steady_state_c(2.0), 1e-9);
}

TEST(ThermalModel, CoolingWorksToo) {
  ThermalModel m(cfg(), TechParams{});
  for (int i = 0; i < 100; ++i) m.step(2.0, 1e-3);
  const double hot = m.temperature_c();
  for (int i = 0; i < 100; ++i) m.step(0.1, 1e-3);
  EXPECT_LT(m.temperature_c(), hot);
  EXPECT_NEAR(m.temperature_c(), m.steady_state_c(0.1), 1e-6);
}

TEST(ThermalModel, LeakageMultiplierDoublesPerStep) {
  ThermalModel m(cfg(), TechParams{});
  EXPECT_DOUBLE_EQ(m.leakage_multiplier(cfg().t_ref_c), 1.0);
  EXPECT_NEAR(m.leakage_multiplier(cfg().t_ref_c + cfg().leak_doubling_c),
              2.0, 1e-12);
  EXPECT_NEAR(m.leakage_multiplier(cfg().t_ref_c - cfg().leak_doubling_c),
              0.5, 1e-12);
}

TEST(ThermalSim, GatingCoolsTheCore) {
  SimConfig sc;
  sc.instructions = 300'000;
  sc.warmup_instructions = 100'000;
  sc.thermal.enable = true;
  const Simulator sim(sc);
  const WorkloadProfile* p = find_profile("mcf-like");
  const ThermalResult none = sim.run_thermal(*p, "none");
  const ThermalResult mapg = sim.run_thermal(*p, "mapg");
  EXPECT_GT(none.epochs, 5u);
  EXPECT_GT(none.avg_temperature_c, sc.thermal.t_ambient_c);
  // MAPG removes most of the hot-spot power on this workload: cooler die.
  EXPECT_LT(mapg.avg_temperature_c, none.avg_temperature_c - 3.0);
  EXPECT_LE(mapg.peak_temperature_c, none.peak_temperature_c + 1e-9);
}

TEST(ThermalSim, FeedbackAmplifiesSavings) {
  SimConfig sc;
  sc.instructions = 300'000;
  sc.warmup_instructions = 100'000;
  sc.thermal.enable = true;
  const Simulator sim(sc);
  const WorkloadProfile* p = find_profile("mcf-like");
  const ThermalResult none = sim.run_thermal(*p, "none");
  const ThermalResult mapg = sim.run_thermal(*p, "mapg");

  const double iso_savings =
      1.0 - mapg.sim.energy.total_j() / none.sim.energy.total_j();
  const double thermal_savings =
      1.0 - mapg.thermal_total_j() / none.thermal_total_j();
  // The cooler gated die leaks less even while awake: feedback must
  // strictly increase the measured savings.
  EXPECT_GT(thermal_savings, iso_savings);
}

TEST(ThermalSim, TimingIdenticalToIsothermalRun) {
  // Temperature only affects energy bookkeeping, never timing: the thermal
  // run must execute cycle-for-cycle like the plain run.
  SimConfig sc;
  sc.instructions = 200'000;
  sc.warmup_instructions = 50'000;
  sc.thermal.enable = true;
  const Simulator sim(sc);
  const WorkloadProfile* p = find_profile("omnetpp-like");
  const ThermalResult t = sim.run_thermal(*p, "mapg");
  const SimResult r = sim.run(*p, "mapg");
  EXPECT_EQ(t.sim.core.cycles, r.core.cycles);
  EXPECT_EQ(t.sim.gating.gated_events, r.gating.gated_events);
  // And the isothermal energy fields agree exactly.
  EXPECT_DOUBLE_EQ(t.sim.energy.total_j(), r.energy.total_j());
}

TEST(ThermalSim, HotterRefConventionMeansMultiplierBelowOneWhenCool) {
  // The default platform's leakage is characterized at 85 C while the
  // ambient node sits at 60 C, so a mostly-gated core ends up with a
  // feedback-corrected leakage BELOW the isothermal number, and a hot
  // ungated core approaches it from below as it heats toward T_ref.
  SimConfig sc;
  sc.instructions = 300'000;
  sc.warmup_instructions = 100'000;
  sc.thermal.enable = true;
  const Simulator sim(sc);
  const ThermalResult mapg =
      sim.run_thermal(*find_profile("mcf-like"), "mapg");
  EXPECT_LT(mapg.thermal_core_leak_j, mapg.sim.energy.core_leak_j);
}

}  // namespace
}  // namespace mapg
