// Differential test layer: the fast-forward (closed-form) stall kernel must
// be bit-identical to the cycle-accurate stepped reference.
//
// The comparison goes through exec/serialize.h canonical JSON: every
// SimResult field — counters, histograms, running moments, energy doubles —
// participates, so a new field can never silently escape coverage (it lands
// in result_to_json or the exec round-trip tests fail).
//
// Energy is a pure function of the final integer counters, so counter
// identity implies energy identity bit-for-bit.  The one quantity that is
// NOT bit-identical by construction — the per-stall-window energy integral,
// which the reference accumulates cycle by cycle while the fast kernel uses
// closed-form products — is compared to floating-point tolerance in
// StallWindowEnergyIntegralAgrees.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/sim.h"
#include "exec/serialize.h"
#include "multicore/multicore.h"
#include "trace/profile.h"

namespace mapg {
namespace {

const std::vector<std::string>& policy_specs() {
  static const std::vector<std::string> specs = {
      "none",          "idle-timeout:64",  "idle-timeout-early:64",
      "oracle",        "mapg",             "mapg-aggressive",
      "mapg-noearly",  "mapg-unfiltered",  "mapg-history",
      "mapg-multimode", "mapg-hybrid",
  };
  return specs;
}

SimConfig diff_config(std::uint64_t seed) {
  SimConfig cfg;
  cfg.instructions = 30'000;
  cfg.warmup_instructions = 6'000;
  cfg.run_seed = seed;
  return cfg;
}

/// Run the same cell through both kernels and compare canonical dumps.
void expect_identical(const SimConfig& base, const WorkloadProfile& profile,
                      const std::string& spec) {
  SimConfig fast = base;
  fast.fast_forward = true;
  SimConfig stepped = base;
  stepped.fast_forward = false;

  const SimResult a = Simulator(fast).run(profile, spec);
  const SimResult b = Simulator(stepped).run(profile, spec);
  EXPECT_EQ(result_to_json(a).dump(), result_to_json(b).dump())
      << "fast-forward diverges from the cycle-accurate reference for "
      << profile.name << " / " << spec << " / seed=" << base.run_seed;
}

// Full workload x policy x seed matrix, one test case per workload so ctest
// can shard them.
class KernelDifferential : public ::testing::TestWithParam<std::string> {};

TEST_P(KernelDifferential, FastForwardMatchesCycleAccurate) {
  const WorkloadProfile* p = find_profile(GetParam());
  ASSERT_NE(p, nullptr);
  for (const std::string& spec : policy_specs())
    for (const std::uint64_t seed : {1ull, 42ull, 1337ull})
      expect_identical(diff_config(seed), *p, spec);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, KernelDifferential,
                         ::testing::Values("mcf-like", "lbm-like",
                                           "milc-like", "libquantum-like",
                                           "soplex-like", "omnetpp-like",
                                           "gcc-like", "astar-like",
                                           "bzip2-like", "hmmer-like",
                                           "gamess-like", "povray-like"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

// Config corners the flat matrix does not reach: disabled refresh, single
// channel, deeper MLP, degenerate zero-cycle entry, prefetching.
TEST(KernelDifferential, ConfigCorners) {
  const WorkloadProfile* p = find_profile("mcf-like");
  ASSERT_NE(p, nullptr);

  SimConfig no_refresh = diff_config(42);
  no_refresh.mem.dram.t_refi = 0;
  expect_identical(no_refresh, *p, "mapg");

  SimConfig one_channel = diff_config(42);
  one_channel.mem.dram.channels = 1;
  one_channel.core.mlp_window = 16;
  expect_identical(one_channel, *p, "mapg-multimode");

  SimConfig instant_entry = diff_config(42);
  instant_entry.pg.entry_ns = 0;
  instant_entry.pg.settle_ns = 0;
  expect_identical(instant_entry, *p, "oracle");

  SimConfig prefetch = diff_config(42);
  prefetch.mem.prefetch.enable = true;
  expect_identical(prefetch, *p, "mapg");

  SimConfig no_warmup = diff_config(7);
  no_warmup.warmup_instructions = 0;
  expect_identical(no_warmup, *p, "idle-timeout:16");

  // DRAM low-power states (docs/MEMORY_POWER.md).  Timeout mode perturbs
  // DRAM timing (exit shifts) identically for both kernels; coordinated
  // mode exercises the PowerDownMeter against the closed form — including
  // the PG-side dram_pd counters and the window-energy PD term.
  SimConfig dram_timeout = diff_config(42);
  dram_timeout.mem.dram.power.mode = DramPowerMode::kTimeout;
  dram_timeout.mem.dram.power.selfrefresh_timeout = 20'000;
  expect_identical(dram_timeout, *p, "mapg");

  SimConfig dram_coord = diff_config(42);
  dram_coord.mem.dram.power.mode = DramPowerMode::kCoordinated;
  expect_identical(dram_coord, *p, "mapg-dram");
  expect_identical(dram_coord, *p, "oracle-dram");
  expect_identical(dram_coord, *p, "idle-timeout-early-dram:64");

  // Multi-standard timing table + page-policy axis + FR-FCFS posted-write
  // queue (docs/DRAM.md).  Both kernels must see identical DRAM behavior
  // under every standard / policy / queue combination.
  SimConfig ddr4 = diff_config(42);
  apply_dram_standard(ddr4.mem.dram, DramStandard::kDdr4_2400);
  ddr4.dram_energy = dram_energy_for_standard(DramStandard::kDdr4_2400);
  expect_identical(ddr4, *p, "mapg");

  SimConfig lp4_closed = diff_config(42);
  apply_dram_standard(lp4_closed.mem.dram, DramStandard::kLpddr4_3200);
  lp4_closed.dram_energy =
      dram_energy_for_standard(DramStandard::kLpddr4_3200);
  lp4_closed.mem.dram.page_policy = PagePolicy::kClosed;
  expect_identical(lp4_closed, *p, "mapg");

  SimConfig hybrid_queued = diff_config(42);
  hybrid_queued.mem.dram.page_policy = PagePolicy::kHybrid;
  hybrid_queued.mem.dram.hybrid_addr_bits = 3;
  hybrid_queued.mem.dram.queue_depth = 8;
  hybrid_queued.mem.dram.write_starve_limit = 256;
  expect_identical(hybrid_queued, *p, "mapg");

  // Queue + coordinated DRAM gating: the drain at every settle_power must
  // land at the same points in both kernels.
  SimConfig queued_coord = diff_config(42);
  queued_coord.mem.dram.queue_depth = 4;
  queued_coord.mem.dram.power.mode = DramPowerMode::kCoordinated;
  expect_identical(queued_coord, *p, "mapg-dram");
}

// Multicore: shared L2/DRAM contention plus the wake arbiter.  The stepped
// kernel must call the arbiter at the same global points, so grants —
// and hence every core's timing — stay identical.
TEST(KernelDifferential, MulticoreWithArbiterMatches) {
  MulticoreConfig base;
  base.num_cores = 3;
  base.instructions_per_core = 25'000;
  base.warmup_instructions = 5'000;
  base.wake_arbiter_slots = 1;

  const std::vector<WorkloadProfile> mix = {*find_profile("mcf-like"),
                                            *find_profile("libquantum-like"),
                                            *find_profile("omnetpp-like")};
  for (const char* spec : {"mapg", "mapg-multimode"}) {
    MulticoreConfig fast = base;
    fast.fast_forward = true;
    MulticoreConfig stepped = base;
    stepped.fast_forward = false;
    const MulticoreResult a = MulticoreSim(fast).run(mix, spec);
    const MulticoreResult b = MulticoreSim(stepped).run(mix, spec);

    EXPECT_EQ(a.makespan, b.makespan) << spec;
    EXPECT_EQ(a.wake_delayed_grants, b.wake_delayed_grants) << spec;
    EXPECT_EQ(a.wake_delay_cycles, b.wake_delay_cycles) << spec;
    EXPECT_EQ(a.dram.reads, b.dram.reads) << spec;
    EXPECT_EQ(a.dram.writes, b.dram.writes) << spec;
    ASSERT_EQ(a.cores.size(), b.cores.size());
    for (std::size_t i = 0; i < a.cores.size(); ++i) {
      const CoreSlotResult& x = a.cores[i];
      const CoreSlotResult& y = b.cores[i];
      EXPECT_EQ(x.core.cycles, y.core.cycles) << spec << " core " << i;
      EXPECT_EQ(x.core.penalty_cycles, y.core.penalty_cycles)
          << spec << " core " << i;
      EXPECT_EQ(x.gating.gated_events, y.gating.gated_events)
          << spec << " core " << i;
      EXPECT_EQ(x.gating.activity.gated_cycles, y.gating.activity.gated_cycles)
          << spec << " core " << i;
      EXPECT_EQ(x.gating.idle_ungated_cycles, y.gating.idle_ungated_cycles)
          << spec << " core " << i;
      EXPECT_EQ(x.gating.refresh_window_cycles,
                y.gating.refresh_window_cycles)
          << spec << " core " << i;
      // Identical counters through identical compute_energy => identical
      // doubles, exactly.
      EXPECT_EQ(x.energy.total_j(), y.energy.total_j())
          << spec << " core " << i;
    }
    EXPECT_EQ(a.total_j(), b.total_j()) << spec;
  }
}

// Scheduler differential: the min-heap bulk-run scheduler must reproduce
// the historical per-instruction linear min-scan exactly — same pop order
// (lowest clock, then lowest slot index), same shared-L2/DRAM access
// interleaving, same early stop when the last core crosses its measurement
// quota.  Any divergence shows up in the shared counters or makespan.
TEST(KernelDifferential, MulticoreHeapSchedulerMatchesLinearScan) {
  MulticoreConfig base;
  base.num_cores = 4;
  base.instructions_per_core = 25'000;
  base.warmup_instructions = 5'000;
  base.wake_arbiter_slots = 1;  // grants depend on global wakeup order

  // Asymmetric mix: cores run at very different speeds, so the lead changes
  // often and ties (equal clocks) actually occur.
  const std::vector<WorkloadProfile> mix = {*find_profile("mcf-like"),
                                            *find_profile("gamess-like"),
                                            *find_profile("libquantum-like"),
                                            *find_profile("omnetpp-like")};
  for (const char* spec : {"none", "mapg", "idle-timeout:64"}) {
    MulticoreConfig heap = base;
    heap.heap_scheduler = true;
    MulticoreConfig scan = base;
    scan.heap_scheduler = false;
    const MulticoreResult a = MulticoreSim(heap).run(mix, spec);
    const MulticoreResult b = MulticoreSim(scan).run(mix, spec);

    EXPECT_EQ(a.makespan, b.makespan) << spec;
    EXPECT_EQ(a.shared_l2.read_hits, b.shared_l2.read_hits) << spec;
    EXPECT_EQ(a.shared_l2.read_misses, b.shared_l2.read_misses) << spec;
    EXPECT_EQ(a.shared_l2.write_hits, b.shared_l2.write_hits) << spec;
    EXPECT_EQ(a.shared_l2.write_misses, b.shared_l2.write_misses) << spec;
    EXPECT_EQ(a.shared_l2.evictions, b.shared_l2.evictions) << spec;
    EXPECT_EQ(a.dram.reads, b.dram.reads) << spec;
    EXPECT_EQ(a.dram.writes, b.dram.writes) << spec;
    EXPECT_EQ(a.dram.row_hits, b.dram.row_hits) << spec;
    EXPECT_EQ(a.dram.row_conflicts, b.dram.row_conflicts) << spec;
    EXPECT_EQ(a.dram.refresh_delays, b.dram.refresh_delays) << spec;
    EXPECT_EQ(a.wake_delayed_grants, b.wake_delayed_grants) << spec;
    EXPECT_EQ(a.wake_delay_cycles, b.wake_delay_cycles) << spec;
    ASSERT_EQ(a.cores.size(), b.cores.size());
    for (std::size_t i = 0; i < a.cores.size(); ++i) {
      const CoreSlotResult& x = a.cores[i];
      const CoreSlotResult& y = b.cores[i];
      EXPECT_EQ(x.valid, y.valid) << spec << " core " << i;
      EXPECT_EQ(x.core.cycles, y.core.cycles) << spec << " core " << i;
      EXPECT_EQ(x.core.instrs, y.core.instrs) << spec << " core " << i;
      EXPECT_EQ(x.core.stall_cycles_dram, y.core.stall_cycles_dram)
          << spec << " core " << i;
      EXPECT_EQ(x.core.penalty_cycles, y.core.penalty_cycles)
          << spec << " core " << i;
      EXPECT_EQ(x.hier.served_dram, y.hier.served_dram)
          << spec << " core " << i;
      EXPECT_EQ(x.hier.merged, y.hier.merged) << spec << " core " << i;
      EXPECT_EQ(x.gating.gated_events, y.gating.gated_events)
          << spec << " core " << i;
      EXPECT_EQ(x.gating.activity.gated_cycles, y.gating.activity.gated_cycles)
          << spec << " core " << i;
      EXPECT_EQ(x.gating.idle_ungated_cycles, y.gating.idle_ungated_cycles)
          << spec << " core " << i;
      // Identical counters through identical compute_energy => identical
      // doubles, exactly.
      EXPECT_EQ(x.energy.total_j(), y.energy.total_j())
          << spec << " core " << i;
    }
    EXPECT_EQ(a.total_j(), b.total_j()) << spec;
    EXPECT_EQ(a.shared_leak_j, b.shared_leak_j) << spec;
    EXPECT_EQ(a.dram_j, b.dram_j) << spec;
  }
}

// Thermal feedback: epoch boundaries are instruction counts, so identical
// per-epoch counters give identical FP epoch energies and temperatures.
TEST(KernelDifferential, ThermalRunMatches) {
  SimConfig base = diff_config(42);
  base.thermal.enable = true;
  base.thermal.epoch_instructions = 2'000;
  SimConfig fast = base;
  fast.fast_forward = true;
  SimConfig stepped = base;
  stepped.fast_forward = false;

  const WorkloadProfile* p = find_profile("mcf-like");
  ASSERT_NE(p, nullptr);
  const ThermalResult a = Simulator(fast).run_thermal(*p, "mapg");
  const ThermalResult b = Simulator(stepped).run_thermal(*p, "mapg");

  EXPECT_EQ(result_to_json(a.sim).dump(), result_to_json(b.sim).dump());
  EXPECT_EQ(a.epochs, b.epochs);
  EXPECT_EQ(a.final_temperature_c, b.final_temperature_c);
  EXPECT_EQ(a.peak_temperature_c, b.peak_temperature_c);
  EXPECT_EQ(a.avg_temperature_c, b.avg_temperature_c);
  EXPECT_EQ(a.thermal_core_leak_j, b.thermal_core_leak_j);
}

// The stall-window energy cross-check: the reference's per-cycle integral
// must agree with the fast kernel's closed-form interval energy.  This is
// the only per-run quantity allowed to differ in bits (FP association), so
// it lives outside SimResult and is compared with a tolerance here.
TEST(KernelDifferential, StallWindowEnergyIntegralAgrees) {
  for (const char* workload : {"mcf-like", "gamess-like"}) {
    const WorkloadProfile* p = find_profile(workload);
    ASSERT_NE(p, nullptr);
    const SimConfig cfg = diff_config(42);
    const PgCircuit circuit(cfg.pg, cfg.tech);
    const PolicyContext ctx = PgController::make_context(circuit);

    double energy[2] = {0, 0};
    for (const StepMode mode :
         {StepMode::kFastForward, StepMode::kCycleAccurate}) {
      TraceGenerator gen(*p, cfg.run_seed);
      MemoryHierarchy mem(cfg.mem);
      std::unique_ptr<PgPolicy> policy = make_policy("mapg", ctx);
      ASSERT_NE(policy, nullptr);
      StallKernelParams params;
      params.mode = mode;
      params.t_refi = cfg.mem.dram.t_refi;
      params.t_rfc = cfg.mem.dram.t_rfc;
      params.rates = StallEnergyRates::make(cfg.tech, circuit,
                                            cfg.dram_energy,
                                            cfg.mem.dram.channels);
      PgController controller(*policy, circuit, nullptr, params);
      Core core(cfg.core, mem, &controller);
      core.set_step_mode(mode);
      core.run(gen, cfg.instructions);
      energy[mode == StepMode::kCycleAccurate] =
          controller.stall_window_energy_j();
    }
    EXPECT_GT(energy[0], 0.0) << workload;
    EXPECT_NEAR(energy[0], energy[1], 1e-9 * energy[0]) << workload;
  }
}

}  // namespace
}  // namespace mapg
