// Serve subsystem tests: request coalescing (exactly-one-compute, proven
// deterministically with a barrier inside the leader's compute), the hot
// LRU tier, tiered resolution's byte-identity contract against a direct
// ExperimentEngine run, cross-request timeline reuse, and the full server
// over real sockets — including N concurrent identical requests causing
// exactly one simulation.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <netdb.h>
#include <sys/socket.h>
#include <unistd.h>

#include "exec/serialize.h"
#include "obs/obs.h"
#include "serve/client.h"
#include "serve/coalescer.h"
#include "serve/hot_cache.h"
#include "serve/server.h"
#include "serve/tiered.h"
#include "trace/profile.h"

namespace mapg::serve {
namespace {

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = std::filesystem::temp_directory_path() /
            ("mapg_test_" + tag + "_" + std::to_string(::getpid()));
    std::filesystem::remove_all(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }

 private:
  std::filesystem::path path_;
};

ExperimentJob tiny_job(const std::string& workload = "mcf-like",
                       const std::string& policy = "mapg",
                       std::uint64_t seed = 1) {
  ExperimentJob job;
  job.config.instructions = 40000;
  job.config.warmup_instructions = 5000;
  job.config.run_seed = seed;
  job.profile = *find_profile(workload);
  job.policy_spec = policy;
  return job;
}

/// The reference bytes: a direct, replay-free, cache-free engine run.
std::string direct_dump(const ExperimentJob& job) {
  ExecOptions opts;
  opts.jobs = 1;
  opts.use_replay = false;
  ExperimentEngine engine(opts);
  const JobOutcome out = engine.run_one(job);
  EXPECT_TRUE(out.ok) << out.error;
  return result_to_json(*out.result).dump();
}

// --- RequestCoalescer ----------------------------------------------------

TEST(Coalescer, NConcurrentIdenticalKeysComputeExactlyOnce) {
  constexpr int kThreads = 8;
  RequestCoalescer coalescer;
  std::atomic<int> computes{0};
  std::atomic<bool> timed_out{false};

  // The leader's compute blocks until every other thread has registered as
  // a follower (coalesced_ is counted under the coalescer lock BEFORE the
  // follower waits), making "exactly one compute" deterministic, not a
  // race we usually win.
  const auto compute = [&] {
    computes.fetch_add(1);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (coalescer.coalesced_total() <
           static_cast<std::uint64_t>(kThreads - 1)) {
      if (std::chrono::steady_clock::now() > deadline) {
        timed_out.store(true);
        break;
      }
      std::this_thread::yield();
    }
    JobOutcome out;
    out.ok = true;
    out.result = std::make_shared<const SimResult>();
    return out;
  };

  std::vector<std::thread> threads;
  std::vector<JobOutcome> outcomes(kThreads);
  std::vector<char> waited(kThreads, 0);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      bool coalesced = false;
      outcomes[i] = coalescer.run("the-key", compute, &coalesced);
      waited[i] = coalesced ? 1 : 0;
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_FALSE(timed_out.load());
  EXPECT_EQ(computes.load(), 1);
  EXPECT_EQ(coalescer.coalesced_total(),
            static_cast<std::uint64_t>(kThreads - 1));
  EXPECT_EQ(coalescer.inflight(), 0u);
  int leaders = 0;
  for (int i = 0; i < kThreads; ++i) {
    EXPECT_TRUE(outcomes[i].ok);
    // Followers share the leader's result object, not a copy.
    EXPECT_EQ(outcomes[i].result, outcomes[0].result);
    leaders += waited[i] ? 0 : 1;
  }
  EXPECT_EQ(leaders, 1);
}

TEST(Coalescer, DistinctKeysDoNotBlockEachOther) {
  RequestCoalescer coalescer;
  std::atomic<int> running{0};
  std::atomic<int> peak{0};
  const auto compute = [&] {
    const int now = running.fetch_add(1) + 1;
    int old = peak.load();
    while (now > old && !peak.compare_exchange_weak(old, now)) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    running.fetch_sub(1);
    JobOutcome out;
    out.ok = true;
    out.result = std::make_shared<const SimResult>();
    return out;
  };
  std::thread a([&] { coalescer.run("key-a", compute); });
  std::thread b([&] { coalescer.run("key-b", compute); });
  a.join();
  b.join();
  EXPECT_EQ(peak.load(), 2);  // both computes overlapped
  EXPECT_EQ(coalescer.coalesced_total(), 0u);
}

TEST(Coalescer, ThrowingLeaderReleasesFollowersAndRetriesFresh) {
  RequestCoalescer coalescer;
  std::atomic<int> calls{0};
  const auto failing = [&]() -> JobOutcome {
    calls.fetch_add(1);
    throw std::runtime_error("boom");
  };
  const JobOutcome out = coalescer.run("k", failing);
  EXPECT_FALSE(out.ok);
  EXPECT_NE(out.error.find("boom"), std::string::npos);
  EXPECT_EQ(coalescer.inflight(), 0u);  // key unpublished after failure
  coalescer.run("k", failing);
  EXPECT_EQ(calls.load(), 2);  // a later retry computes afresh
}

// --- HotCache ------------------------------------------------------------

std::shared_ptr<const SimResult> dummy_result() {
  return std::make_shared<const SimResult>();
}

TEST(HotCache, LruEvictsLeastRecentlyUsed) {
  HotCache cache(2);
  cache.put("a", dummy_result());
  cache.put("b", dummy_result());
  EXPECT_NE(cache.get("a"), nullptr);  // touch: b is now LRU
  cache.put("c", dummy_result());      // evicts b
  EXPECT_NE(cache.get("a"), nullptr);
  EXPECT_EQ(cache.get("b"), nullptr);
  EXPECT_NE(cache.get("c"), nullptr);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(HotCache, PeekIsStatsAndRecencyNeutral) {
  HotCache cache(2);
  cache.put("a", dummy_result());
  cache.put("b", dummy_result());
  const HotCacheStats before = cache.stats();
  EXPECT_NE(cache.peek("a"), nullptr);
  EXPECT_EQ(cache.peek("zz"), nullptr);
  const HotCacheStats after = cache.stats();
  EXPECT_EQ(after.hits, before.hits);
  EXPECT_EQ(after.misses, before.misses);
  cache.put("c", dummy_result());  // peek("a") must NOT have protected a
  EXPECT_EQ(cache.get("a"), nullptr);
}

TEST(HotCache, ZeroCapacityDisablesTheTier) {
  HotCache cache(0);
  cache.put("a", dummy_result());
  EXPECT_EQ(cache.get("a"), nullptr);
  EXPECT_EQ(cache.size(), 0u);
}

// --- TieredExecutor ------------------------------------------------------

TEST(Tiered, EveryTierReturnsByteIdenticalResults) {
  const ExperimentJob job = tiny_job();
  const std::string reference = direct_dump(job);

  ExecOptions opts;
  opts.jobs = 1;
  ExperimentEngine engine(opts);
  TieredExecutor tiered(engine);

  const ServeOutcome computed = tiered.run_cell(job);
  ASSERT_TRUE(computed.job.ok) << computed.job.error;
  EXPECT_EQ(computed.tier, Tier::kCompute);
  EXPECT_EQ(result_to_json(*computed.job.result).dump(), reference);

  const ServeOutcome hot = tiered.run_cell(job);
  EXPECT_EQ(hot.tier, Tier::kHot);
  EXPECT_EQ(result_to_json(*hot.job.result).dump(), reference);

  // A fresh tiered executor over the same engine: hot tier cold, engine
  // cache warm.
  TieredExecutor fresh(engine);
  const ServeOutcome cached = fresh.run_cell(job);
  EXPECT_EQ(cached.tier, Tier::kCache);
  EXPECT_EQ(result_to_json(*cached.job.result).dump(), reference);

  EXPECT_EQ(engine.stats().jobs_run, 1u);  // one simulation total
}

TEST(Tiered, SweepRecordsTimelineOnceAndLaterRequestsReuseIt) {
  ExecOptions opts;
  opts.jobs = 1;
  ExperimentEngine engine(opts);
  TieredExecutor tiered(engine);

  const std::vector<std::string> policies = {"none", "mapg",
                                             "idle-timeout:64"};
  std::vector<ExperimentJob> jobs;
  for (const std::string& p : policies) jobs.push_back(tiny_job("mcf-like", p));

  const std::vector<ServeOutcome> outcomes =
      tiered.run_cells(jobs, 1, policies.size(), 1);
  ASSERT_EQ(outcomes.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    ASSERT_TRUE(outcomes[i].job.ok) << outcomes[i].job.error;
    EXPECT_EQ(result_to_json(*outcomes[i].job.result).dump(),
              direct_dump(jobs[i]))
        << "policy " << policies[i];
  }
  const ServeStats after_sweep = tiered.stats();
  EXPECT_EQ(after_sweep.timelines_recorded, 1u);
  // The recording run IS the `none` cell, so it comes back as a cache hit.
  EXPECT_EQ(outcomes[0].tier, Tier::kCache);

  // A LATER, separate request in the same (config, workload, seed) group:
  // replays the cached timeline instead of simulating from scratch.
  const ExperimentJob late = tiny_job("mcf-like", "oracle");
  const ServeOutcome out = tiered.run_cell(late);
  ASSERT_TRUE(out.job.ok) << out.job.error;
  EXPECT_EQ(result_to_json(*out.job.result).dump(), direct_dump(late));
  EXPECT_GT(tiered.stats().timelines_reused, after_sweep.timelines_reused);
}

// --- ServeServer end-to-end over real sockets ----------------------------

class ServeServerTest : public ::testing::Test {
 protected:
  void start_server(unsigned jobs = 2, const std::string& cache_dir = {}) {
    ServerOptions opts;
    opts.port = 0;  // ephemeral
    opts.exec.jobs = jobs;
    opts.exec.cache_dir = cache_dir;
    server_ = std::make_unique<ServeServer>(opts);
    std::string error;
    ASSERT_TRUE(server_->start(&error)) << error;
  }

  std::unique_ptr<ServeClient> connect() {
    auto client = std::make_unique<ServeClient>();
    std::string error;
    EXPECT_TRUE(client->connect("127.0.0.1", server_->port(), &error))
        << error;
    return client;
  }

  static CellRequest tiny_cell(const std::string& policy = "mapg",
                               const std::string& seed = "1") {
    CellRequest req;
    req.config = {{"instructions", "40000"},
                  {"warmup", "5000"},
                  {"seed", seed}};
    req.workload = "mcf-like";
    req.policy = policy;
    return req;
  }

  std::unique_ptr<ServeServer> server_;
};

TEST_F(ServeServerTest, PingCellAndStats) {
  start_server();
  auto client = connect();
  std::string error;
  EXPECT_TRUE(client->ping(&error)) << error;

  const std::optional<Json> doc = client->cell(tiny_cell(), &error);
  ASSERT_TRUE(doc) << error;
  EXPECT_TRUE(doc->get("ok").as_bool());
  EXPECT_EQ(doc->get("tier").as_string(), "compute");
  // The wire bytes of the embedded result are exactly what a local engine
  // serializes for the same cell — the byte-identity contract.
  EXPECT_EQ(doc->get("result").dump(),
            direct_dump(tiny_job("mcf-like", "mapg", 1)));

  const std::optional<Json> stats = client->stats(&error);
  ASSERT_TRUE(stats) << error;
  EXPECT_EQ(stats->get("serve").get("cells").as_u64(), 1u);
  EXPECT_EQ(stats->get("engine").get("jobs_run").as_u64(), 1u);
}

TEST_F(ServeServerTest, SweepMatchesDirectEngineCellByCell) {
  start_server();
  auto client = connect();
  SweepRequest req;
  req.config = {{"instructions", "40000"}, {"warmup", "5000"},
                {"seed", "1"}};
  req.workloads = {"mcf-like", "gcc-like"};
  req.policies = {"none", "mapg"};
  req.seeds = 2;
  std::string error;
  const std::optional<Json> doc = client->sweep(req, &error);
  ASSERT_TRUE(doc) << error;
  const Json& cells = doc->get("cells");
  ASSERT_EQ(cells.size(), 2u * 2u * 2u);

  // Expansion order: workload outer, policy mid, seed inner — and every
  // cell byte-identical to a direct engine run.
  std::size_t i = 0;
  for (const std::string& w : req.workloads) {
    for (const std::string& p : req.policies) {
      for (unsigned s = 0; s < req.seeds; ++s, ++i) {
        const Json& cell = cells.at(i);
        ASSERT_TRUE(cell.get("ok").as_bool());
        ExperimentJob job = tiny_job(w, p, 1 + s);
        EXPECT_EQ(cell.get("result").dump(), direct_dump(job))
            << w << "/" << p << "/seed" << s;
      }
    }
  }
}

TEST_F(ServeServerTest, ConcurrentIdenticalRequestsSimulateExactlyOnce) {
  start_server(/*jobs=*/4);
  constexpr int kClients = 6;
#if MAPG_OBS_ENABLED
  const std::uint64_t coalesced_before =
      obs::MetricsRegistry::instance().counter("serve.coalesced").value();
#endif

  std::vector<std::string> dumps(kClients);
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([this, i, &dumps] {
      ServeClient client;
      std::string error;
      ASSERT_TRUE(client.connect("127.0.0.1", server_->port(), &error))
          << error;
      const std::optional<Json> doc = client.cell(tiny_cell(), &error);
      ASSERT_TRUE(doc) << error;
      ASSERT_TRUE(doc->get("ok").as_bool());
      dumps[i] = doc->get("result").dump();
    });
  }
  for (auto& t : threads) t.join();

  // The hard guarantee: however the requests interleaved (coalesced while
  // in flight, hot/cache hits after), the simulation ran exactly once.
  EXPECT_EQ(server_->engine().stats().jobs_run, 1u);
  const ServeStats stats = server_->tiered().stats();
  EXPECT_EQ(stats.cells, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(stats.computed, 1u);
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_EQ(stats.coalesced + stats.hot_hits + stats.cache_hits +
                stats.replayed,
            static_cast<std::uint64_t>(kClients - 1));
  for (int i = 1; i < kClients; ++i) EXPECT_EQ(dumps[i], dumps[0]);

#if MAPG_OBS_ENABLED
  // The serve.coalesced counter tracks the tiered stats exactly.
  EXPECT_EQ(obs::MetricsRegistry::instance()
                .counter("serve.coalesced")
                .value() -
                coalesced_before,
            stats.coalesced);
#endif
}

TEST_F(ServeServerTest, PipelinedRequestsComeBackInOrder) {
  start_server(/*jobs=*/4);
  auto client = connect();
  std::string error;
  // Mix fast (ping) and slow (cell) requests; replies must arrive in
  // request order even though workers finish out of order.
  ASSERT_TRUE(client->send(FrameType::kCell,
                           cell_request_json(tiny_cell("mapg")).dump(),
                           &error));
  ASSERT_TRUE(client->send(FrameType::kPing, {}, &error));
  ASSERT_TRUE(client->send(FrameType::kCell,
                           cell_request_json(tiny_cell("none")).dump(),
                           &error));
  ASSERT_TRUE(client->send(FrameType::kPing, {}, &error));

  Frame reply;
  ASSERT_TRUE(client->recv(&reply, &error)) << error;
  EXPECT_EQ(reply.type, FrameType::kReplyOk);
  EXPECT_FALSE(reply.payload.empty());  // cell response
  ASSERT_TRUE(client->recv(&reply, &error)) << error;
  EXPECT_TRUE(reply.payload.empty());  // ping ack
  ASSERT_TRUE(client->recv(&reply, &error)) << error;
  EXPECT_FALSE(reply.payload.empty());
  ASSERT_TRUE(client->recv(&reply, &error)) << error;
  EXPECT_TRUE(reply.payload.empty());
}

TEST_F(ServeServerTest, BadRequestsGetErrorsAndGarbageKillsOnlyThatConn) {
  start_server();
  auto client = connect();
  std::string error;

  // Unknown workload / unknown config key -> kReplyError with a message.
  CellRequest bad = tiny_cell();
  bad.workload = "no-such-workload";
  EXPECT_FALSE(client->cell(bad, &error));
  EXPECT_NE(error.find("workload"), std::string::npos);

  bad = tiny_cell();
  bad.config["definitely.not.a.key"] = "1";
  EXPECT_FALSE(client->cell(bad, &error));
  EXPECT_NE(error.find("unknown config key"), std::string::npos);

  // A connection writing garbage gets dropped...
  {
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res = nullptr;
    const std::string port = std::to_string(server_->port());
    ASSERT_EQ(::getaddrinfo("127.0.0.1", port.c_str(), &hints, &res), 0);
    const int fd = ::socket(res->ai_family, res->ai_socktype,
                            res->ai_protocol);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::connect(fd, res->ai_addr, res->ai_addrlen), 0);
    ::freeaddrinfo(res);
    const char garbage[] = "GET / HTTP/1.1\r\n\r\n";
    ASSERT_GT(::write(fd, garbage, sizeof(garbage)), 0);
    char buf[16];
    // EOF or RST — either way the server dropped this connection (RST when
    // our unread garbage was still in its receive buffer at close).
    EXPECT_LE(::read(fd, buf, sizeof(buf)), 0);
    ::close(fd);
  }

  // ...but the server (and this healthy connection) survive.
  EXPECT_TRUE(client->ping(&error)) << error;
}

TEST_F(ServeServerTest, ShutdownRequestUnblocksWait) {
  start_server();
  std::atomic<bool> returned{false};
  std::thread waiter([&] {
    server_->wait();
    returned.store(true);
  });
  auto client = connect();
  std::string error;
  EXPECT_TRUE(client->shutdown_server(&error)) << error;
  waiter.join();
  EXPECT_TRUE(returned.load());
  server_->stop();
}

TEST(ServeShard, ShardOfIsConsistentAndInRange) {
  const std::string key_a = "00000000000000010000000000000000";
  const std::string key_b = "ffffffffffffffff0000000000000000";
  EXPECT_EQ(shard_of(key_a, 4), shard_of(key_a, 4));
  EXPECT_EQ(shard_of(key_a, 4), 1u % 4);
  EXPECT_LT(shard_of(key_b, 3), 3u);
  EXPECT_EQ(shard_of(key_b, 1), 0u);
}

TEST_F(ServeServerTest, ShardFrontForwardsByKeyAndMatchesDirect) {
  // Two workers + a front that owns no simulation of its own.
  ServerOptions wopts;
  wopts.port = 0;
  wopts.exec.jobs = 2;
  ServeServer worker_a(wopts), worker_b(wopts);
  std::string error;
  ASSERT_TRUE(worker_a.start(&error)) << error;
  ASSERT_TRUE(worker_b.start(&error)) << error;

  ServerOptions fopts;
  fopts.port = 0;
  fopts.shards = {"127.0.0.1:" + std::to_string(worker_a.port()),
                  "127.0.0.1:" + std::to_string(worker_b.port())};
  ServeServer front(fopts);
  ASSERT_TRUE(front.start(&error)) << error;

  ServeClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", front.port(), &error)) << error;

  SweepRequest req;
  req.config = {{"instructions", "40000"}, {"warmup", "5000"},
                {"seed", "1"}};
  req.workloads = {"mcf-like", "gcc-like"};
  req.policies = {"none", "mapg"};
  req.seeds = 1;
  const std::optional<Json> doc = client.sweep(req, &error);
  ASSERT_TRUE(doc) << error;
  const Json& cells = doc->get("cells");
  ASSERT_EQ(cells.size(), 4u);
  std::size_t i = 0;
  for (const std::string& w : req.workloads) {
    for (const std::string& p : req.policies) {
      const Json& cell = cells.at(i++);
      ASSERT_TRUE(cell.get("ok").as_bool()) << cell.dump();
      EXPECT_EQ(cell.get("result").dump(), direct_dump(tiny_job(w, p, 1)))
          << w << "/" << p;
    }
  }
  // The front simulated nothing; the workers split the cells.
  EXPECT_EQ(front.engine().stats().jobs_run, 0u);
  const std::uint64_t total_cells = worker_a.tiered().stats().cells +
                                    worker_b.tiered().stats().cells;
  EXPECT_EQ(total_cells, 4u);

  front.stop();
  worker_a.stop();
  worker_b.stop();
}

}  // namespace
}  // namespace mapg::serve
