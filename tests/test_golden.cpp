// Golden regression tests: frozen fingerprints of the synthetic traces and
// of one end-to-end simulation.
//
// Purpose: the reconstructed experiment numbers in EXPERIMENTS.md are only
// meaningful if the workload generator keeps producing bit-identical
// streams.  Any intentional change to the generator, a profile, or the PRNG
// must update these constants AND regenerate EXPERIMENTS.md — this test
// turns a silent change into a loud one.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "core/sim.h"
#include "trace/generator.h"
#include "trace/profile.h"

namespace mapg {
namespace {

std::uint64_t fnv_step(const Instr& i, std::uint64_t h) {
  auto mix = [&](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  mix(static_cast<std::uint64_t>(i.op));
  mix(i.addr);
  mix(i.dep_dist);
  return h;
}

std::uint64_t trace_fingerprint(const WorkloadProfile& p, int n = 10000) {
  TraceGenerator g(p, 42);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  Instr instr;
  for (int k = 0; k < n; ++k) {
    g.next(instr);
    h = fnv_step(instr, h);
  }
  return h;
}

TEST(Golden, TraceFingerprintsFrozen) {
  const std::map<std::string, std::uint64_t> expected = {
      {"mcf-like", 0x93768c783f22e97cULL},
      {"lbm-like", 0xe38e2f72d975a0b3ULL},
      {"milc-like", 0x5470131a2a1cd8deULL},
      {"libquantum-like", 0xb857ddfb9c2a7ee4ULL},
      {"soplex-like", 0x4c5aec4538a6063bULL},
      {"omnetpp-like", 0x50d32868ed3b0c74ULL},
      {"gcc-like", 0x13954d9840b2f367ULL},
      {"astar-like", 0x21a4e223e7a09b43ULL},
      {"bzip2-like", 0x2f2b058a006a8372ULL},
      {"hmmer-like", 0xf431908c1a129ad3ULL},
      {"gamess-like", 0x70e5bf5fe3010bd5ULL},
      {"povray-like", 0x4aec7ea9bc44a38aULL},
  };
  ASSERT_EQ(builtin_profiles().size(), expected.size());
  for (const auto& p : builtin_profiles()) {
    auto it = expected.find(p.name);
    ASSERT_NE(it, expected.end()) << "new profile '" << p.name
                                  << "': freeze its fingerprint here";
    EXPECT_EQ(trace_fingerprint(p), it->second)
        << p.name << ": generator output changed — if intentional, update "
        << "this constant and regenerate EXPERIMENTS.md";
  }
}

TEST(Golden, EndToEndFingerprint) {
  // One full simulation pinned end-to-end: trace -> caches -> DRAM -> core
  // -> policy -> controller.  Cycle count and gating-event count together
  // fingerprint the whole timing stack.
  SimConfig cfg;
  cfg.instructions = 100'000;
  cfg.warmup_instructions = 20'000;
  const SimResult r =
      Simulator(cfg).run(*find_profile("mcf-like"), "mapg");
  EXPECT_EQ(r.core.instrs, 100'000u);
  // Frozen values; see the header comment before "fixing" a mismatch.
  const SimResult ref = Simulator(cfg).run(*find_profile("mcf-like"), "mapg");
  EXPECT_EQ(r.core.cycles, ref.core.cycles);  // trivially deterministic
  // The actual frozen numbers:
  EXPECT_EQ(r.core.cycles, 1'600'511u);
  EXPECT_EQ(r.gating.gated_events, 7'535u);
}

}  // namespace
}  // namespace mapg
