// Unit tests for the core model: issue timing, dependence stalls, MLP
// crediting, stall-event reporting, and the StallHandler contract.
#include <gtest/gtest.h>

#include <vector>

#include "cpu/core.h"
#include "mem/hierarchy.h"
#include "trace/trace_io.h"

namespace mapg {
namespace {

HierarchyConfig tiny_mem() {
  HierarchyConfig h;
  h.l1d = CacheConfig{.name = "L1D",
                      .size_bytes = 1024,
                      .assoc = 2,
                      .line_bytes = 64,
                      .hit_latency = 3};
  h.l2 = CacheConfig{.name = "L2",
                     .size_bytes = 8192,
                     .assoc = 4,
                     .line_bytes = 64,
                     .hit_latency = 12};
  h.mc_request_latency = 10;
  h.fill_return_latency = 15;
  return h;
}

Instr alu() { return Instr{.op = OpClass::kAlu}; }
Instr load(Addr a, std::uint16_t dep) {
  return Instr{.op = OpClass::kLoad, .addr = a, .dep_dist = dep};
}

/// Distinct cold addresses guaranteed to miss to DRAM (new row each).
Addr cold(int i) { return 1 << 20 | static_cast<Addr>(i) * 16384; }

struct RecordingHandler final : StallHandler {
  std::vector<StallEvent> events;
  Cycle extra = 0;  ///< penalty added beyond data_ready
  Cycle on_stall(const StallEvent& ev) override {
    events.push_back(ev);
    return ev.data_ready + extra;
  }
};

struct UnderbidHandler final : StallHandler {
  Cycle on_stall(const StallEvent& ev) override {
    return ev.start;  // tries to resume before the data is ready
  }
};

CoreStats run_core(const std::vector<Instr>& prog, MemoryHierarchy& mem,
                   StallHandler* h = nullptr, CoreConfig cfg = {}) {
  VectorTraceSource src(prog);
  Core core(cfg, mem, h);
  core.run(src, prog.size());
  return core.stats();
}

TEST(Core, PureAluRunsAtIpcOne) {
  MemoryHierarchy mem(tiny_mem());
  const std::vector<Instr> prog(1000, alu());
  const CoreStats s = run_core(prog, mem);
  EXPECT_EQ(s.instrs, 1000u);
  EXPECT_EQ(s.cycles, 1000u);
  EXPECT_DOUBLE_EQ(s.ipc(), 1.0);
  EXPECT_EQ(s.idle_cycles(), 0u);
  EXPECT_EQ(s.busy_cycles(), 1000u);
}

TEST(Core, DivBlocksIssueForItsLatency) {
  MemoryHierarchy mem(tiny_mem());
  CoreConfig cfg;
  std::vector<Instr> prog(10, Instr{.op = OpClass::kDiv});
  const CoreStats s = run_core(prog, mem, nullptr, cfg);
  EXPECT_EQ(s.cycles, 10 * cfg.div_latency);
  EXPECT_EQ(s.idle_cycles(), 0u);  // the divider is busy, not idle
}

TEST(Core, MulAndFpArePipelined) {
  MemoryHierarchy mem(tiny_mem());
  std::vector<Instr> prog;
  for (int i = 0; i < 50; ++i) {
    prog.push_back(Instr{.op = OpClass::kMul});
    prog.push_back(Instr{.op = OpClass::kFp});
    prog.push_back(Instr{.op = OpClass::kBranch});
  }
  const CoreStats s = run_core(prog, mem);
  EXPECT_EQ(s.cycles, 150u);
}

TEST(Core, L1HitDependenceStallsForHitLatency) {
  MemoryHierarchy mem2(tiny_mem());
  mem2.load(0, 0);  // pre-fill line 0; lands ~cycle 592 (t=0 refresh window)
  RecordingHandler h;
  // Pad with leading ALUs so the load issues after the fill has landed and
  // hits in L1: load(0) at t completes t+3; its consumer at t+1 waits 2.
  std::vector<Instr> padded(700, alu());
  padded.push_back(load(0, 1));
  padded.push_back(alu());
  padded.push_back(alu());
  Core core({}, mem2, &h);
  VectorTraceSource src(padded);
  core.run(src, padded.size());
  ASSERT_EQ(h.events.size(), 1u);
  EXPECT_FALSE(h.events[0].dram);
  EXPECT_EQ(h.events[0].length(), 2u);  // hit latency 3, issued 1 cycle ago
  EXPECT_EQ(core.stats().stall_cycles_other, 2u);
  EXPECT_EQ(core.stats().stalls_other, 1u);
}

TEST(Core, DepDistZeroNeverStalls) {
  MemoryHierarchy mem(tiny_mem());
  std::vector<Instr> prog;
  for (int i = 0; i < 20; ++i) {
    prog.push_back(load(cold(i), 0));  // prefetch-like: no consumer
    for (int j = 0; j < 30; ++j) prog.push_back(alu());
  }
  CoreConfig cfg;
  cfg.mlp_window = 64;  // never hit the credit limit
  const CoreStats s = run_core(prog, mem, nullptr, cfg);
  EXPECT_EQ(s.stalls_dram + s.stalls_other, 0u);
  EXPECT_EQ(s.cycles, prog.size());
}

TEST(Core, DramDependenceStallReportsEventFields) {
  MemoryHierarchy mem(tiny_mem());
  RecordingHandler h;
  const std::vector<Instr> prog = {load(cold(0), 2), alu(), alu(), alu()};
  Core core({}, mem, &h);
  VectorTraceSource src(prog);
  core.run(src, prog.size());
  ASSERT_EQ(h.events.size(), 1u);
  const StallEvent& ev = h.events[0];
  EXPECT_TRUE(ev.dram);
  EXPECT_EQ(ev.reason, StallReason::kDependence);
  EXPECT_EQ(ev.start, 2u);  // load at 0, alu at 1, consumer blocks at 2
  EXPECT_GT(ev.data_ready, ev.start + 100);  // a DRAM round trip
  EXPECT_GT(ev.commit, 0u);
  EXPECT_LE(ev.commit, ev.data_ready);
  EXPECT_GT(ev.estimate, ev.start);
  EXPECT_EQ(core.stats().stalls_dram, 1u);
  EXPECT_EQ(core.stats().dram_stall_hist.total(), 1u);
}

TEST(Core, HandlerPenaltyDelaysResumeAndIsCounted) {
  MemoryHierarchy mem_a(tiny_mem()), mem_b(tiny_mem());
  const std::vector<Instr> prog = {load(cold(0), 1), alu(), alu()};
  RecordingHandler none;
  const CoreStats base = run_core(prog, mem_a, &none);
  RecordingHandler pay;
  pay.extra = 25;
  const CoreStats slow = run_core(prog, mem_b, &pay);
  EXPECT_EQ(slow.cycles, base.cycles + 25);
  EXPECT_EQ(slow.penalty_cycles, 25u);
  EXPECT_EQ(base.penalty_cycles, 0u);
  // The raw stall length is identical; only the penalty differs.
  EXPECT_EQ(slow.stall_cycles_dram, base.stall_cycles_dram);
}

TEST(Core, HandlerCannotResumeBeforeDataReady) {
  MemoryHierarchy mem_a(tiny_mem()), mem_b(tiny_mem());
  const std::vector<Instr> prog = {load(cold(0), 1), alu(), alu()};
  UnderbidHandler under;
  const CoreStats clamped = run_core(prog, mem_a, &under);
  RecordingHandler none;
  const CoreStats base = run_core(prog, mem_b, &none);
  EXPECT_EQ(clamped.cycles, base.cycles);
}

TEST(Core, MlpWindowLimitsOutstandingMisses) {
  CoreConfig cfg;
  cfg.mlp_window = 2;
  MemoryHierarchy mem(tiny_mem());
  RecordingHandler h;
  // Three back-to-back independent DRAM loads: the third must wait for a
  // credit (kMlpLimit), even with no data dependences.
  const std::vector<Instr> prog = {load(cold(0), 0), load(cold(1), 0),
                                   load(cold(2), 0), alu()};
  Core core(cfg, mem, &h);
  VectorTraceSource src(prog);
  core.run(src, prog.size());
  ASSERT_GE(h.events.size(), 1u);
  EXPECT_EQ(h.events[0].reason, StallReason::kMlpLimit);
  EXPECT_TRUE(h.events[0].dram);
  EXPECT_EQ(core.stats().mlp_limit_stalls, 1u);
}

TEST(Core, WideMlpWindowOverlapsMisses) {
  // With enough credits, k independent DRAM misses overlap: total time is
  // far below k serialized round trips.
  CoreConfig narrow, wide;
  narrow.mlp_window = 1;
  wide.mlp_window = 16;
  std::vector<Instr> prog;
  for (int i = 0; i < 16; ++i) prog.push_back(load(cold(i), 0));
  prog.push_back(load(cold(99), 1));  // final blocking consumer
  prog.push_back(alu());

  MemoryHierarchy mem_n(tiny_mem()), mem_w(tiny_mem());
  const CoreStats sn = run_core(prog, mem_n, nullptr, narrow);
  const CoreStats sw = run_core(prog, mem_w, nullptr, wide);
  EXPECT_LT(sw.cycles * 3, sn.cycles);  // overlap at least 3x faster
}

TEST(Core, ScoreboardKeepsLatestFinishingProducer) {
  MemoryHierarchy mem(tiny_mem());
  RecordingHandler h;
  // Two loads whose consumers collide on the same instruction: an L1-fast
  // load (dep 2) and a DRAM-slow load (dep 1) both feed instruction 2.
  // The stall must last until the *slow* one returns.
  mem.load(0, 0);  // warm line 0 so the first load hits in L1 later
  std::vector<Instr> prog(200, alu());  // let the warm fill land
  prog.push_back(load(0, 2));          // fast producer -> consumer +2
  prog.push_back(load(cold(5), 1));    // slow producer -> same consumer
  prog.push_back(alu());               // the shared consumer
  Core core({}, mem, &h);
  VectorTraceSource src(prog);
  core.run(src, prog.size());
  ASSERT_EQ(h.events.size(), 1u);
  EXPECT_TRUE(h.events[0].dram);             // classified by the slow one
  EXPECT_GT(h.events[0].length(), 100u);
}

TEST(Core, StoresNeverBlockIssue) {
  MemoryHierarchy mem(tiny_mem());
  std::vector<Instr> prog;
  for (int i = 0; i < 100; ++i)
    prog.push_back(Instr{.op = OpClass::kStore,
                         .addr = cold(i)});
  const CoreStats s = run_core(prog, mem);
  EXPECT_EQ(s.cycles, 100u);
  EXPECT_EQ(s.idle_cycles(), 0u);
}

TEST(Core, InstrClassCountsMatch) {
  MemoryHierarchy mem(tiny_mem());
  std::vector<Instr> prog;
  prog.insert(prog.end(), 5, alu());
  prog.insert(prog.end(), 3, Instr{.op = OpClass::kMul});
  prog.insert(prog.end(), 2, Instr{.op = OpClass::kStore, .addr = 0});
  const CoreStats s = run_core(prog, mem);
  EXPECT_EQ(s.instr_by_class[static_cast<int>(OpClass::kAlu)], 5u);
  EXPECT_EQ(s.instr_by_class[static_cast<int>(OpClass::kMul)], 3u);
  EXPECT_EQ(s.instr_by_class[static_cast<int>(OpClass::kStore)], 2u);
  EXPECT_EQ(s.instrs, 10u);
}

TEST(Core, ResetStatsCountsOnlyNewWork) {
  MemoryHierarchy mem(tiny_mem());
  VectorTraceSource src(std::vector<Instr>(500, alu()));
  Core core({}, mem);
  core.run(src, 200);
  core.reset_stats();
  core.run(src, 300);
  EXPECT_EQ(core.stats().instrs, 300u);
  EXPECT_EQ(core.stats().cycles, 300u);
  EXPECT_EQ(core.now(), 500u);  // absolute time keeps running
}

TEST(Core, MergedLoadsDoNotConsumeMlpCredits) {
  CoreConfig cfg;
  cfg.mlp_window = 1;
  MemoryHierarchy mem(tiny_mem());
  RecordingHandler h;
  // Two loads to the SAME line back-to-back: the second merges into the
  // in-flight fill and must not trigger an MLP-limit stall.
  const std::vector<Instr> prog = {load(cold(0), 0), load(cold(0) + 8, 0),
                                   alu()};
  Core core(cfg, mem, &h);
  VectorTraceSource src(prog);
  core.run(src, prog.size());
  EXPECT_EQ(core.stats().mlp_limit_stalls, 0u);
  EXPECT_EQ(core.stats().cycles, 3u);
}

TEST(Core, IssueWidthTwoHalvesAluTime) {
  MemoryHierarchy mem(tiny_mem());
  CoreConfig wide;
  wide.issue_width = 2;
  const std::vector<Instr> prog(1000, alu());
  const CoreStats s = run_core(prog, mem, nullptr, wide);
  EXPECT_EQ(s.cycles, 500u);
  EXPECT_DOUBLE_EQ(s.ipc(), 2.0);
}

TEST(Core, IssueWidthRoundsUpPartialGroups) {
  MemoryHierarchy mem(tiny_mem());
  CoreConfig wide;
  wide.issue_width = 4;
  const std::vector<Instr> prog(10, alu());  // 2 full groups + 2 leftovers
  const CoreStats s = run_core(prog, mem, nullptr, wide);
  EXPECT_EQ(s.cycles, 2u);  // leftovers issued in cycle 2, clock not bumped
}

TEST(Core, DivFlushesIssueGroup) {
  MemoryHierarchy mem(tiny_mem());
  CoreConfig wide;
  wide.issue_width = 2;
  // alu+div+alu+alu: alu at slot0; div flushes (+20); then two alus pair up.
  const std::vector<Instr> prog = {alu(), Instr{.op = OpClass::kDiv}, alu(),
                                   alu()};
  const CoreStats s = run_core(prog, mem, nullptr, wide);
  EXPECT_EQ(s.cycles, wide.div_latency + 1);
}

TEST(Core, WiderIssueIncreasesMemoryPressureStalls) {
  // The same load-heavy program on a wider core reaches its loads sooner, so
  // total runtime shrinks but the DRAM-stall share of time grows — the
  // mechanism behind the issue-width sensitivity in R-Tab.2.
  std::vector<Instr> prog;
  for (int i = 0; i < 50; ++i) {
    prog.push_back(load(cold(i), 2));
    for (int j = 0; j < 20; ++j) prog.push_back(alu());
  }
  CoreConfig narrow, wide;
  wide.issue_width = 4;
  MemoryHierarchy mem_n(tiny_mem()), mem_w(tiny_mem());
  const CoreStats sn = run_core(prog, mem_n, nullptr, narrow);
  const CoreStats sw = run_core(prog, mem_w, nullptr, wide);
  EXPECT_LT(sw.cycles, sn.cycles);
  const double frac_n = static_cast<double>(sn.stall_cycles_dram) /
                        static_cast<double>(sn.cycles);
  const double frac_w = static_cast<double>(sw.stall_cycles_dram) /
                        static_cast<double>(sw.cycles);
  EXPECT_GT(frac_w, frac_n);
}

TEST(Core, CyclesDecomposeIntoBusyAndIdle) {
  MemoryHierarchy mem(tiny_mem());
  RecordingHandler h;
  h.extra = 10;
  std::vector<Instr> prog;
  for (int i = 0; i < 20; ++i) {
    prog.push_back(load(cold(i), 1));
    prog.push_back(alu());
    for (int j = 0; j < 5; ++j) prog.push_back(alu());
  }
  Core core({}, mem, &h);
  VectorTraceSource src(prog);
  core.run(src, prog.size());
  const CoreStats& s = core.stats();
  EXPECT_EQ(s.busy_cycles() + s.idle_cycles(), s.cycles);
  EXPECT_EQ(s.penalty_cycles, 10u * s.stalls_dram);
}

}  // namespace
}  // namespace mapg
