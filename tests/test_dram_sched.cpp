// Multi-standard DRAM timing table, the page-policy axis, and the FR-FCFS
// posted-write queue (docs/DRAM.md): preset/default identity, parse round
// trips, depth-0 bit-identity, the starvation bound as a property, row-hit
// ordering, overflow, drain completeness, and exact page-policy latencies.
#include <gtest/gtest.h>

#include <vector>

#include "common/prng.h"
#include "mem/dram.h"
#include "power/dram_energy.h"

namespace mapg {
namespace {

Addr make_line(const DramConfig& c, std::uint32_t channel, std::uint32_t bank,
               std::uint64_t row, std::uint64_t col = 0) {
  std::uint64_t line_no = row;
  line_no = line_no * c.banks_per_channel + bank;
  line_no = line_no * c.lines_per_row() + col;
  line_no = line_no * c.channels + channel;
  return line_no * c.line_bytes;
}

// ---------------------------------------------------------------------------
// Standard table
// ---------------------------------------------------------------------------

// The DDR3-1600 preset IS the default DramConfig: this is what makes
// --dram-standard=ddr3-1600 byte-identical to a default run, and what keeps
// every historical golden valid.  apply_dram_standard's DDR3 block and the
// member initializers in mem/dram.h must never drift apart.
TEST(StandardTable, Ddr3PresetIsTheDefault) {
  const DramConfig def;
  DramConfig c;
  apply_dram_standard(c, DramStandard::kDdr3_1600);
  EXPECT_EQ(c.row_bytes, def.row_bytes);
  EXPECT_EQ(c.t_rcd, def.t_rcd);
  EXPECT_EQ(c.t_rp, def.t_rp);
  EXPECT_EQ(c.t_cl, def.t_cl);
  EXPECT_EQ(c.t_bl, def.t_bl);
  EXPECT_EQ(c.t_ras, def.t_ras);
  EXPECT_EQ(c.t_rfc, def.t_rfc);
  EXPECT_EQ(c.t_refi, def.t_refi);
  EXPECT_EQ(c.power.t_pd, def.power.t_pd);
  EXPECT_EQ(c.power.t_xp, def.power.t_xp);
  EXPECT_EQ(c.power.t_cke, def.power.t_cke);
  EXPECT_EQ(c.power.t_xs, def.power.t_xs);
  EXPECT_EQ(c.power.powerdown_timeout, def.power.powerdown_timeout);
  EXPECT_EQ(c.standard, DramStandard::kDdr3_1600);  // == the default label
  EXPECT_EQ(def.standard, DramStandard::kDdr3_1600);
}

TEST(StandardTable, PresetsAreValidAndDistinct) {
  for (DramStandard s : {DramStandard::kDdr3_1600, DramStandard::kDdr4_2400,
                         DramStandard::kLpddr4_3200}) {
    DramConfig c;
    apply_dram_standard(c, s);
    EXPECT_TRUE(c.valid()) << to_string(s);
    EXPECT_EQ(c.standard, s);
  }
  DramConfig ddr4, lp4;
  apply_dram_standard(ddr4, DramStandard::kDdr4_2400);
  apply_dram_standard(lp4, DramStandard::kLpddr4_3200);
  EXPECT_EQ(ddr4.t_bl, 10u);       // 2400 MT/s moves a burst faster
  EXPECT_EQ(lp4.row_bytes, 2048u); // LPDDR4's small pages
  EXPECT_LT(lp4.t_refi, ddr4.t_refi);  // and its 3.9 us refresh interval
}

TEST(StandardTable, PresetLeavesOrthogonalAxesAlone) {
  DramConfig c;
  c.channels = 4;
  c.line_bytes = 128;
  c.page_policy = PagePolicy::kClosed;
  c.queue_depth = 8;
  c.power.mode = DramPowerMode::kCoordinated;
  c.power.selfrefresh_timeout = 5000;
  apply_dram_standard(c, DramStandard::kLpddr4_3200);
  EXPECT_EQ(c.channels, 4u);
  EXPECT_EQ(c.line_bytes, 128u);
  EXPECT_EQ(c.page_policy, PagePolicy::kClosed);
  EXPECT_EQ(c.queue_depth, 8u);
  EXPECT_EQ(c.power.mode, DramPowerMode::kCoordinated);
  EXPECT_EQ(c.power.selfrefresh_timeout, Cycle{5000});
}

TEST(StandardTable, CustomIsALabelOnly) {
  DramConfig c;
  c.t_cl = 77;
  apply_dram_standard(c, DramStandard::kCustom);
  EXPECT_EQ(c.t_cl, Cycle{77});
  EXPECT_EQ(c.standard, DramStandard::kCustom);
}

TEST(StandardTable, ParseRoundTrips) {
  for (DramStandard s : {DramStandard::kCustom, DramStandard::kDdr3_1600,
                         DramStandard::kDdr4_2400, DramStandard::kLpddr4_3200}) {
    DramStandard out = DramStandard::kCustom;
    EXPECT_TRUE(parse_dram_standard(to_string(s), out));
    EXPECT_EQ(out, s);
  }
  for (PagePolicy p :
       {PagePolicy::kOpen, PagePolicy::kClosed, PagePolicy::kHybrid}) {
    PagePolicy out = PagePolicy::kOpen;
    EXPECT_TRUE(parse_page_policy(to_string(p), out));
    EXPECT_EQ(out, p);
  }
  DramStandard s = DramStandard::kDdr4_2400;
  EXPECT_FALSE(parse_dram_standard("ddr5-4800", s));
  EXPECT_EQ(s, DramStandard::kDdr4_2400);  // untouched on failure
  PagePolicy p = PagePolicy::kHybrid;
  EXPECT_FALSE(parse_page_policy("adaptive", p));
  EXPECT_EQ(p, PagePolicy::kHybrid);
}

TEST(StandardTable, EnergyPresetsValidAndOrdered) {
  const DramEnergyParams ddr3 =
      dram_energy_for_standard(DramStandard::kDdr3_1600);
  const DramEnergyParams ddr4 =
      dram_energy_for_standard(DramStandard::kDdr4_2400);
  const DramEnergyParams lp4 =
      dram_energy_for_standard(DramStandard::kLpddr4_3200);
  EXPECT_TRUE(ddr3.valid());
  EXPECT_TRUE(ddr4.valid());
  EXPECT_TRUE(lp4.valid());
  // The process story: every generation trims background power, and the
  // mobile part's low-power states are an order of magnitude deeper.
  EXPECT_GT(ddr3.background_w_per_channel, ddr4.background_w_per_channel);
  EXPECT_GT(ddr4.background_w_per_channel, lp4.background_w_per_channel);
  EXPECT_GT(ddr3.powerdown_w_per_channel, lp4.powerdown_w_per_channel);
  EXPECT_GT(ddr3.selfrefresh_w_per_channel, lp4.selfrefresh_w_per_channel);
  // kCustom / kDdr3_1600 are the header defaults.
  const DramEnergyParams def;
  EXPECT_EQ(ddr3.background_w_per_channel, def.background_w_per_channel);
  EXPECT_EQ(dram_energy_for_standard(DramStandard::kCustom).read_nj,
            def.read_nj);
}

TEST(StandardTable, QueueConfigLegality) {
  DramConfig c;
  EXPECT_TRUE(c.valid());
  c.queue_depth = 4;
  EXPECT_TRUE(c.valid());
  c.write_starve_limit = 0;
  EXPECT_FALSE(c.valid());  // a queue with no starvation bound is illegal
  c.queue_depth = 0;
  EXPECT_TRUE(c.valid());  // depth 0 does not care about the bound
  c.write_starve_limit = 512;
  c.hybrid_addr_bits = 64;
  EXPECT_FALSE(c.valid());  // shift width
}

// ---------------------------------------------------------------------------
// FR-FCFS posted-write queue
// ---------------------------------------------------------------------------

// A read-only stream never populates the queue, so any depth must be
// bit-identical to the legacy synchronous path — results AND stats.
TEST(Sched, ReadOnlyStreamIsDepthInvariant) {
  DramConfig legacy;
  DramConfig queued = legacy;
  queued.queue_depth = 16;
  Dram a(legacy), b(queued);

  Prng rng(7);
  Cycle now = 0;
  for (int i = 0; i < 2000; ++i) {
    now += rng.range(0, 200);
    const Addr line = make_line(legacy, rng.range(0, legacy.channels - 1),
                                rng.range(0, legacy.banks_per_channel - 1),
                                rng.range(0, 63), rng.range(0, 7));
    const DramResult ra = a.access(line, /*is_write=*/false, now);
    const DramResult rb = b.access(line, /*is_write=*/false, now);
    ASSERT_EQ(ra.completion, rb.completion);
    ASSERT_EQ(ra.commit, rb.commit);
    ASSERT_EQ(ra.estimate, rb.estimate);
    ASSERT_EQ(ra.outcome, rb.outcome);
  }
  EXPECT_EQ(a.stats().row_hits, b.stats().row_hits);
  EXPECT_EQ(a.stats().refresh_delays, b.stats().refresh_delays);
  EXPECT_EQ(b.stats().writes_queued, 0u);
  EXPECT_EQ(b.stats().write_queue_peak, 0u);
}

TEST(Sched, WritesArePostedNotServiced) {
  DramConfig c;
  c.queue_depth = 8;
  Dram d(c);
  const DramResult r =
      d.access(make_line(c, 0, 0, /*row=*/1), /*is_write=*/true, 1000);
  EXPECT_EQ(r.completion, Cycle{1000});  // placeholder: posted, not serviced
  EXPECT_EQ(d.stats().writes, 0u);       // not issued yet
  EXPECT_EQ(d.stats().writes_queued, 1u);
  EXPECT_EQ(d.export_state().channels[0].write_queue.size(), 1u);

  d.drain_writes(2000);
  EXPECT_EQ(d.stats().writes, 1u);
  EXPECT_EQ(d.stats().writes_drained, 1u);
  EXPECT_EQ(d.stats().write_wait_cycles, 1000u);
  EXPECT_EQ(d.stats().write_wait_max, 1000u);
  EXPECT_EQ(d.export_state().channels[0].write_queue.size(), 0u);
}

// FR-FCFS core ordering: a read that misses the open row lets row-hitting
// writes issue first; a read that hits goes straight through.
TEST(Sched, RowHitWritesIssueBeforeAMissingRead) {
  DramConfig c;
  c.channels = 1;
  c.queue_depth = 8;
  c.write_starve_limit = 100000;  // keep the starvation bound out of the way
  Dram d(c);

  // Open row 5 in bank 0 (read at t=1000, past the cycle-0 refresh window).
  d.access(make_line(c, 0, 0, 5), false, 1000);
  // Post one write that hits the open row and one that does not.
  d.access(make_line(c, 0, 0, 5, /*col=*/1), true, 2000);  // row hit
  d.access(make_line(c, 0, 1, 9), true, 2000);             // bank 1: closed
  ASSERT_EQ(d.export_state().channels[0].write_queue.size(), 2u);

  // A read to a DIFFERENT row of bank 0 misses -> the row-hitting write
  // issues first (as a row hit), the non-hitting write stays queued.
  const std::uint64_t writes_before = d.stats().writes;
  const std::uint64_t hits_before = d.stats().row_hits;
  d.access(make_line(c, 0, 0, 6), false, 3000);
  EXPECT_EQ(d.stats().writes, writes_before + 1);
  EXPECT_EQ(d.stats().row_hits, hits_before + 1);  // the write hit row 5
  const Dram::State st = d.export_state();
  ASSERT_EQ(st.channels[0].write_queue.size(), 1u);
  std::uint32_t wch = 0, wbank = 0;
  std::uint64_t wrow = 0;
  d.map_address(st.channels[0].write_queue[0].line_addr, wch, wbank, wrow);
  EXPECT_EQ(wbank, 1u);  // the closed-bank write is the one left behind
  EXPECT_EQ(d.stats().writes_starved, 0u);  // ordering, not the bound
}

TEST(Sched, RowHitReadDoesNotWaitForQueuedWrites) {
  DramConfig c;
  c.channels = 1;
  c.queue_depth = 8;
  c.write_starve_limit = 100000;
  Dram d(c);

  d.access(make_line(c, 0, 0, 5), false, 1000);            // open row 5
  d.access(make_line(c, 0, 0, 5, /*col=*/1), true, 2000);  // row-hit write

  // The read also hits row 5: reads are latency-critical, so it wins the
  // tie and the write stays posted.
  const std::uint64_t writes_before = d.stats().writes;
  d.access(make_line(c, 0, 0, 5, /*col=*/2), false, 3000);
  EXPECT_EQ(d.stats().writes, writes_before);
  EXPECT_EQ(d.export_state().channels[0].write_queue.size(), 1u);
}

TEST(Sched, OverflowForcesTheOldestWriteOut) {
  DramConfig c;
  c.channels = 1;
  c.queue_depth = 2;
  Dram d(c);

  d.access(make_line(c, 0, 0, 1), true, 1000);
  d.access(make_line(c, 0, 1, 2), true, 1100);
  EXPECT_EQ(d.stats().writes_overflowed, 0u);
  d.access(make_line(c, 0, 2, 3), true, 1200);  // third write: over depth 2
  EXPECT_EQ(d.stats().writes_overflowed, 1u);
  EXPECT_EQ(d.stats().writes, 1u);  // the forced issue

  const Dram::State st = d.export_state();
  const auto& q = st.channels[0].write_queue;
  ASSERT_EQ(q.size(), 2u);
  EXPECT_EQ(q[0].enqueued, Cycle{1100});  // the t=1000 write was evicted
  EXPECT_EQ(q[1].enqueued, Cycle{1200});
  EXPECT_EQ(d.stats().write_queue_peak, 3u);  // peak counts the transient
}

TEST(Sched, SettlePowerDrainsTheQueue) {
  DramConfig c;
  c.queue_depth = 8;
  Dram d(c);
  for (int i = 0; i < 5; ++i)
    d.access(make_line(c, static_cast<std::uint32_t>(i % c.channels),
                       static_cast<std::uint32_t>(i % c.banks_per_channel),
                       static_cast<std::uint64_t>(i)),
             true, 1000 + static_cast<Cycle>(i));
  d.settle_power(5000);  // every snapshot point in the run loop calls this
  EXPECT_EQ(d.stats().writes, 5u);
  EXPECT_EQ(d.stats().writes_drained, 5u);
  const Dram::State st = d.export_state();
  for (const auto& ch : st.channels) EXPECT_TRUE(ch.write_queue.empty());
}

TEST(Sched, DrainIsANoOpAtDepthZero) {
  Dram d(DramConfig{});
  d.access(make_line(DramConfig{}, 0, 0, 1), true, 1000);  // serviced inline
  EXPECT_EQ(d.stats().writes, 1u);
  d.drain_writes(2000);
  EXPECT_EQ(d.stats().writes_drained, 0u);
}

// The starvation bound as a property: at every read (= every scheduling
// point on the channel), no surviving queued write on that channel may have
// waited write_starve_limit cycles or more.  Single channel so every read is
// a scheduling point for every queued write.  Also checks conservation:
// every queued write is issued exactly once.
TEST(Sched, StarvationBoundHolds) {
  DramConfig c;
  c.channels = 1;
  c.queue_depth = 12;
  c.write_starve_limit = 300;
  Dram d(c);

  Prng rng(42);
  Cycle now = 0;
  for (int i = 0; i < 4000; ++i) {
    now += rng.range(1, 60);
    const Addr line = make_line(c, 0, rng.range(0, c.banks_per_channel - 1),
                                rng.range(0, 31), rng.range(0, 7));
    if (rng.bernoulli(0.4)) {
      d.access(line, true, now);
    } else {
      d.access(line, false, now);
      const Dram::State st = d.export_state();
      for (const auto& w : st.channels[0].write_queue)
        ASSERT_LT(now - w.enqueued, c.write_starve_limit);
    }
  }
  d.settle_power(now + 10000);
  const DramStats& s = d.stats();
  EXPECT_EQ(s.reads + s.writes,
            s.reads + s.writes_queued);  // every write issued exactly once
  EXPECT_GT(s.writes_starved, 0u);      // the bound actually fired
  EXPECT_EQ(s.writes_queued,
            s.writes);  // nothing lost, nothing double-issued
  EXPECT_GE(s.write_wait_max, 1u);
  EXPECT_LE(s.write_queue_peak, static_cast<std::uint64_t>(c.queue_depth) + 1);
}

// Checkpoint-shaped round trip: export with writes in flight, import into a
// fresh Dram, and the replayed future (drain + reads) is bit-identical.
TEST(Sched, ExportImportPreservesPendingWrites) {
  DramConfig c;
  c.channels = 1;
  c.queue_depth = 8;
  Dram a(c);
  a.access(make_line(c, 0, 0, 5), false, 1000);
  a.access(make_line(c, 0, 1, 7), true, 1500);
  a.access(make_line(c, 0, 2, 9), true, 1600);

  Dram b(c);
  b.import_state(a.export_state());

  const DramResult ra = a.access(make_line(c, 0, 1, 8), false, 2500);
  const DramResult rb = b.access(make_line(c, 0, 1, 8), false, 2500);
  EXPECT_EQ(ra.completion, rb.completion);
  EXPECT_EQ(ra.outcome, rb.outcome);
  a.settle_power(4000);
  b.settle_power(4000);
  EXPECT_EQ(a.stats().writes, b.stats().writes);
  EXPECT_EQ(a.stats().write_wait_cycles, b.stats().write_wait_cycles);
}

// ---------------------------------------------------------------------------
// Page-policy axis
// ---------------------------------------------------------------------------

// Exact latency pins for the closed policy (DDR3-1600 numbers, t=1000 lands
// after the cycle-0 refresh window [0, 480)):
//   first read, closed bank: ACT at 1000, column at 1041, data [1082, 1097).
//   auto-precharge: PRE at max(col + tBL, act + tRAS) = 1105, bank ready at
//   1105 + tRP = 1146.
//   second read of the SAME row at 2000: the row was closed, so it pays the
//   full ACT + CAS again — outcome kClosed, completion 2097, never kHit.
TEST(PagePolicyAxis, ClosedPolicyExactLatencies) {
  DramConfig c;
  c.page_policy = PagePolicy::kClosed;
  Dram d(c);
  const Addr line = make_line(c, 0, 0, /*row=*/3);

  const DramResult first = d.access(line, false, 1000);
  EXPECT_EQ(first.outcome, RowBufferOutcome::kClosed);
  EXPECT_EQ(first.commit, Cycle{1041});
  EXPECT_EQ(first.completion, Cycle{1097});
  EXPECT_EQ(d.bank_ready(0, 0), Cycle{1146});  // pre at 1105 + tRP 41

  const DramResult second = d.access(line, false, 2000);
  EXPECT_EQ(second.outcome, RowBufferOutcome::kClosed);  // never a hit
  EXPECT_EQ(second.completion, Cycle{2097});
  EXPECT_EQ(d.stats().row_hits, 0u);
  EXPECT_EQ(d.stats().row_conflicts, 0u);  // auto-precharge: no conflicts
}

TEST(PagePolicyAxis, OpenPolicySecondAccessHits) {
  Dram d(DramConfig{});  // kOpen
  const Addr line = make_line(DramConfig{}, 0, 0, 3);
  d.access(line, false, 1000);
  const DramResult second = d.access(line, false, 2000);
  EXPECT_EQ(second.outcome, RowBufferOutcome::kHit);
  EXPECT_EQ(second.completion, Cycle{2000 + 41 + 15});  // CAS + burst only
}

// Hybrid (HAPPY-style, hybrid_addr_bits = 2): rows with (row & 3) == 0
// close, all others stay open.
TEST(PagePolicyAxis, HybridClosesOnlyPredictedRows) {
  DramConfig c;
  c.page_policy = PagePolicy::kHybrid;
  c.hybrid_addr_bits = 2;
  Dram d(c);

  // Row 4 (4 & 3 == 0): treated as reuse-poor, closes.
  const Addr closing = make_line(c, 0, 0, 4);
  d.access(closing, false, 1000);
  EXPECT_EQ(d.access(closing, false, 2000).outcome, RowBufferOutcome::kClosed);

  // Row 5 (5 & 3 != 0): stays open.
  const Addr open = make_line(c, 0, 1, 5);
  d.access(open, false, 3000);
  EXPECT_EQ(d.access(open, false, 4000).outcome, RowBufferOutcome::kHit);
}

// The page policy composes with the write queue: a queued write to a row the
// policy closes leaves the bank closed after issue.
TEST(PagePolicyAxis, ClosedPolicyComposesWithQueue) {
  DramConfig c;
  c.channels = 1;
  c.page_policy = PagePolicy::kClosed;
  c.queue_depth = 4;
  Dram d(c);
  d.access(make_line(c, 0, 0, 2), true, 1000);  // posted
  d.drain_writes(2000);
  EXPECT_EQ(d.stats().writes, 1u);
  // The written row did not stay open: reading it again is kClosed.
  EXPECT_EQ(d.access(make_line(c, 0, 0, 2), false, 5000).outcome,
            RowBufferOutcome::kClosed);
}

}  // namespace
}  // namespace mapg
