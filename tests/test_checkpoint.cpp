// Differential suite for src/replay checkpoint + prefix-resume: resuming a
// penalized policy from an architectural checkpoint must be bit-identical
// to simulating it from cycle 0 — for EVERY eligible checkpoint, not just
// the one the engine would pick.
//
// The equivalence argument (docs/MODEL.md §4c): a checkpoint captures the
// complete architectural state that survives a stall window boundary (core
// clock/scoreboard/outstanding, cache arrays + victim PRNGs, MSHR merge
// table, DRAM row/timing/power anchors); the PG controller is NOT
// serialized — it is a pure deterministic function of the StallEvent
// sequence (stall_kernel.h "Checkpoint anchor contract"), so the resume
// path rebuilds it by feeding the recorded event prefix.  A checkpoint
// with `windows` recorded events is eligible for a policy whose first
// penalized window is at position k iff windows <= k: every window before
// the resume point then resolves penalty-free, i.e. with reference timing.
//
// Identity is asserted on the full SimResult JSON serialization, which
// includes the gating books (GatingStats), the CPU/DRAM energy split, and
// the DRAM low-power residency — not just IPC.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

#include "exec/engine.h"
#include "exec/serialize.h"
#include "obs/obs.h"
#include "replay/replay.h"
#include "trace/profile.h"

namespace mapg {
namespace {

constexpr std::uint64_t kNoPenalty = std::numeric_limits<std::uint64_t>::max();

std::string dump(const SimResult& r) { return result_to_json(r).dump(); }

/// 0-based index of the first penalized window, or kNoPenalty if the
/// policy replays in full (replay_policy bails AT the penalized window,
/// so out.windows counts it as the last one consumed).
std::uint64_t first_penalized(const StallTimeline& tl, const char* spec) {
  const ReplayOutcome out = replay_policy(tl, spec);
  return out.ok ? kNoPenalty : out.windows - 1;
}

/// A config whose penalized policies trip LATE: idle-timeout:687 on
/// mcf-like first penalizes thousands of windows in, so most checkpoints
/// are eligible and the resumed run still contains penalized windows —
/// the resume-then-diverge case.  (At t<=550 the first long stall trips
/// the timer immediately; at t>=858 no stall ever does.  The small caches
/// raise the miss rate so the window density supports a tight stride.)
SimConfig late_penalty_config(int power_mode) {
  SimConfig cfg;
  cfg.instructions = 12'000;
  cfg.warmup_instructions = 3'000;
  cfg.checkpoint_stride = 250;
  cfg.mem.l1d.size_bytes = 4 * 1024;
  cfg.mem.l1d.assoc = 4;
  cfg.mem.l2.size_bytes = 32 * 1024;
  cfg.mem.l2.assoc = 8;
  cfg.mem.dram.power.mode = static_cast<DramPowerMode>(power_mode);
  if (power_mode == 1) cfg.mem.dram.power.selfrefresh_timeout = 1500;
  return cfg;
}

const char* const kLatePolicy = "idle-timeout:687";

TEST(Checkpoint, ResumeAtEveryBoundaryMatchesFromZero) {
  // The full grid: workloads x {wake-exact, reactive, threshold-free}
  // policies x all three DRAM power modes.  Wake-exact policies replay in
  // full, so every checkpoint is eligible; penalized policies only offer
  // eligible checkpoints when their first penalty lands late enough.
  int eligible_total = 0;
  for (const char* wl : {"mcf-like", "libquantum-like"}) {
    for (const char* spec : {"mapg", "oracle", "idle-timeout:64",
                             "idle-timeout:2000", "mapg-aggressive"}) {
      for (int pm = 0; pm < 3; ++pm) {
        SimConfig cfg;
        cfg.instructions = 40'000;
        cfg.warmup_instructions = 8'000;
        cfg.checkpoint_stride = 6'000;
        cfg.mem.dram.power.mode = static_cast<DramPowerMode>(pm);
        if (pm == 1) cfg.mem.dram.power.selfrefresh_timeout = 4000;
        const WorkloadProfile* p = find_profile(wl);
        ASSERT_NE(p, nullptr);
        const StallTimeline tl = record_timeline(cfg, *p);
        ASSERT_FALSE(tl.checkpoints.empty());

        SharedTraceView view(tl.record.trace);
        const std::string want =
            dump(Simulator(cfg).run(view, p->name, spec));
        const std::uint64_t first_pen = first_penalized(tl, spec);
        for (const SimCheckpoint& ck : tl.checkpoints) {
          if (first_pen != kNoPenalty && ck.windows > first_pen) continue;
          ++eligible_total;
          EXPECT_EQ(dump(resume_from_checkpoint(tl, ck, spec)), want)
              << wl << " / " << spec << " pm=" << pm << " ck@"
              << ck.instr_pos << " (windows=" << ck.windows
              << ", in_warmup=" << ck.in_warmup << ")";
        }
      }
    }
  }
  // Wake-exact policies alone guarantee a large eligible population.
  EXPECT_GT(eligible_total, 100);
}

TEST(Checkpoint, ResumeThenDivergeMatchesFromZero) {
  // The hard case: the resumed suffix itself CONTAINS penalized windows,
  // so the continuation re-derives gated-stall timing that differs from
  // the reference — from imported architectural state, across warmup-
  // boundary resets, under all three DRAM power modes (self-refresh
  // straddles included via the pm=1 timeout).
  int eligible_total = 0;
  for (int pm = 0; pm < 3; ++pm) {
    const SimConfig cfg = late_penalty_config(pm);
    const WorkloadProfile* p = find_profile("mcf-like");
    ASSERT_NE(p, nullptr);
    const StallTimeline tl = record_timeline(cfg, *p);
    const std::uint64_t first_pen = first_penalized(tl, kLatePolicy);

    SharedTraceView view(tl.record.trace);
    const std::string want =
        dump(Simulator(cfg).run(view, p->name, kLatePolicy));
    for (const SimCheckpoint& ck : tl.checkpoints) {
      if (first_pen != kNoPenalty && ck.windows > first_pen) continue;
      ++eligible_total;
      EXPECT_EQ(dump(resume_from_checkpoint(tl, ck, kLatePolicy)), want)
          << "pm=" << pm << " ck@" << ck.instr_pos
          << " (windows=" << ck.windows << ")";
    }
    // pm=0 and pm=2 penalize late (first_pen ~ 3000+); pm=1's shorter
    // self-refresh timer shifts stall lengths enough that the policy may
    // replay in full there — either way the loop above must have run.
    if (pm != 1) {
      ASSERT_NE(first_pen, kNoPenalty) << "pm=" << pm;
      EXPECT_GT(first_pen, tl.checkpoints.front().windows) << "pm=" << pm;
    }
  }
  EXPECT_GT(eligible_total, 50);
}

TEST(Checkpoint, SeedsVaryThePenaltyPositionResumeStaysExact) {
  // Same grid cell across seeds: the first-penalty position moves with
  // the trace, the eligibility rule and the identity must not.
  for (const std::uint64_t seed : {1ull, 42ull, 1337ull}) {
    SimConfig cfg = late_penalty_config(0);
    cfg.run_seed = seed;
    const WorkloadProfile* p = find_profile("mcf-like");
    const StallTimeline tl = record_timeline(cfg, *p);
    const std::uint64_t first_pen = first_penalized(tl, kLatePolicy);

    SharedTraceView view(tl.record.trace);
    const std::string want =
        dump(Simulator(cfg).run(view, p->name, kLatePolicy));
    for (const SimCheckpoint& ck : tl.checkpoints) {
      if (first_pen != kNoPenalty && ck.windows > first_pen) continue;
      EXPECT_EQ(dump(resume_from_checkpoint(tl, ck, kLatePolicy)), want)
          << "seed=" << seed << " ck@" << ck.instr_pos;
    }
  }
}

TEST(Checkpoint, StrideZeroDisablesCaptureAndReferenceIsStrideInvariant) {
  // Recording with checkpoints chunks the core's run loop; the reference
  // result must not depend on the chunking.
  SimConfig cfg = late_penalty_config(0);
  const WorkloadProfile* p = find_profile("mcf-like");

  cfg.checkpoint_stride = 0;
  const StallTimeline off = record_timeline(cfg, *p);
  EXPECT_TRUE(off.checkpoints.empty());

  std::string want = dump(*off.reference);
  for (const std::uint64_t stride : {250ull, 1'000ull, 7'777ull}) {
    cfg.checkpoint_stride = stride;
    const StallTimeline tl = record_timeline(cfg, *p);
    EXPECT_FALSE(tl.checkpoints.empty()) << stride;
    EXPECT_EQ(dump(*tl.reference), want) << stride;
    // Checkpoints arrive ordered by both instruction position and window
    // count — resume_policy's eligibility scan relies on that.
    for (std::size_t i = 1; i < tl.checkpoints.size(); ++i) {
      EXPECT_GT(tl.checkpoints[i].instr_pos, tl.checkpoints[i - 1].instr_pos);
      EXPECT_GE(tl.checkpoints[i].windows, tl.checkpoints[i - 1].windows);
    }
  }
}

TEST(Checkpoint, ResumePolicyPicksLatestEligibleAndCounts) {
  const SimConfig cfg = late_penalty_config(0);
  const WorkloadProfile* p = find_profile("mcf-like");
  const StallTimeline tl = record_timeline(cfg, *p);
  const ReplayOutcome rep = replay_policy(tl, kLatePolicy);
  ASSERT_FALSE(rep.ok);
  const std::uint64_t first_pen = rep.windows - 1;

  auto& reg = obs::MetricsRegistry::instance();
  const std::uint64_t res0 = reg.counter("sim.replay.prefix_resumes").value();
  const std::uint64_t sav0 = reg.counter("sim.replay.windows_saved").value();

  const ResumeOutcome out = resume_policy(tl, kLatePolicy, first_pen);
  ASSERT_TRUE(out.ok);
  // Latest eligible checkpoint: no other eligible one starts later.
  std::uint64_t best_pos = 0, best_windows = 0;
  for (const SimCheckpoint& ck : tl.checkpoints)
    if (ck.windows <= first_pen && ck.instr_pos >= best_pos) {
      best_pos = ck.instr_pos;
      best_windows = ck.windows;
    }
  EXPECT_EQ(out.from_instr, best_pos);
  EXPECT_EQ(out.windows_replayed, best_windows);

  SharedTraceView view(tl.record.trace);
  EXPECT_EQ(dump(out.result), dump(Simulator(cfg).run(view, p->name,
                                                      kLatePolicy)));
  EXPECT_EQ(reg.counter("sim.replay.prefix_resumes").value(), res0 + 1);
  EXPECT_EQ(reg.counter("sim.replay.windows_saved").value(),
            sav0 + out.windows_replayed);

  // No eligible checkpoint -> honest refusal, counters untouched.
  std::uint64_t min_windows = kNoPenalty;
  for (const SimCheckpoint& ck : tl.checkpoints)
    if (ck.windows < min_windows) min_windows = ck.windows;
  if (min_windows > 0) {
    EXPECT_FALSE(resume_policy(tl, kLatePolicy, min_windows - 1).ok);
    EXPECT_EQ(reg.counter("sim.replay.prefix_resumes").value(), res0 + 1);
  }
}

TEST(Checkpoint, UnknownSpecThrows) {
  SimConfig cfg = late_penalty_config(0);
  cfg.instructions = 2'000;
  cfg.warmup_instructions = 500;
  const StallTimeline tl = record_timeline(cfg, *find_profile("mcf-like"));
  ASSERT_FALSE(tl.checkpoints.empty());
  EXPECT_THROW(resume_from_checkpoint(tl, tl.checkpoints.front(),
                                      "not-a-policy"),
               std::invalid_argument);
}

TEST(Checkpoint, FingerprintIsDeterministicAndStateSensitive) {
  const SimConfig cfg = late_penalty_config(0);
  const WorkloadProfile* p = find_profile("mcf-like");
  const StallTimeline a = record_timeline(cfg, *p);
  const StallTimeline b = record_timeline(cfg, *p);
  ASSERT_EQ(a.checkpoints.size(), b.checkpoints.size());
  ASSERT_GE(a.checkpoints.size(), 2u);
  // Same run -> same fingerprints; different positions -> different state.
  for (std::size_t i = 0; i < a.checkpoints.size(); ++i)
    EXPECT_EQ(checkpoint_fingerprint(a.checkpoints[i]),
              checkpoint_fingerprint(b.checkpoints[i]))
        << i;
  EXPECT_NE(checkpoint_fingerprint(a.checkpoints.front()),
            checkpoint_fingerprint(a.checkpoints.back()));
}

TEST(Checkpoint, EngineSweepPrefixResumesAndStaysByteIdentical) {
  // Engine-level contract: a sweep whose penalized policy trips late gets
  // its fallback cell resumed from a checkpoint (replay_prefix_resumes
  // advances, windows are saved), the resumed cell carries from_resume
  // provenance, and every byte still matches the replay-disabled engine.
  SweepSpec sweep;
  sweep.base = late_penalty_config(0);
  sweep.workloads = {*find_profile("mcf-like")};
  sweep.policy_specs = {"none", "mapg", kLatePolicy};

  ExecOptions direct_opt;
  direct_opt.use_disk_cache = false;
  direct_opt.use_replay = false;
  ExperimentEngine direct(direct_opt);
  const SweepResult a = direct.run_sweep(sweep);

  ExecOptions replay_opt = direct_opt;
  replay_opt.use_replay = true;
  ExperimentEngine replay(replay_opt);
  const SweepResult b = replay.run_sweep(sweep);

  for (std::size_t pi = 0; pi < sweep.policy_specs.size(); ++pi) {
    const JobOutcome& x = a.at(0, 0, pi);
    const JobOutcome& y = b.at(0, 0, pi);
    ASSERT_TRUE(x.ok && y.ok) << sweep.policy_specs[pi];
    EXPECT_EQ(dump(*x.result), dump(*y.result)) << sweep.policy_specs[pi];
    EXPECT_FALSE(x.from_resume);
  }
  EXPECT_TRUE(b.at(0, 0, 2).from_resume);
  EXPECT_FALSE(b.at(0, 0, 1).from_resume);

  const EngineStats s = replay.stats();
  EXPECT_EQ(s.replay_prefix_resumes, 1u);
  EXPECT_GT(s.replay_windows_saved, 0u);
  EXPECT_EQ(s.replay_fallbacks, 0u);
  // Resumed cells are shortened simulations, counted under jobs_run, so
  // the sweep-accounting invariant holds unchanged.
  EXPECT_EQ(s.jobs_run + s.jobs_replayed,
            sweep.workloads.size() * sweep.policy_specs.size());
}

TEST(Checkpoint, EngineFallsBackWhenNoCheckpointIsEligible) {
  // idle-timeout:64 penalizes within the first few windows: no checkpoint
  // is eligible, the engine must take the full from-zero fallback — and
  // still match the replay-disabled engine byte-for-byte.
  SweepSpec sweep;
  sweep.base = late_penalty_config(0);
  sweep.workloads = {*find_profile("mcf-like")};
  sweep.policy_specs = {"none", "idle-timeout:64"};

  ExecOptions opt;
  opt.use_disk_cache = false;
  opt.use_replay = false;
  ExperimentEngine direct(opt);
  const SweepResult a = direct.run_sweep(sweep);
  opt.use_replay = true;
  ExperimentEngine replay(opt);
  const SweepResult b = replay.run_sweep(sweep);

  EXPECT_EQ(dump(*a.at(0, 0, 1).result), dump(*b.at(0, 0, 1).result));
  EXPECT_FALSE(b.at(0, 0, 1).from_resume);
  EXPECT_EQ(replay.stats().replay_prefix_resumes, 0u);
  EXPECT_EQ(replay.stats().replay_fallbacks, 1u);
}

}  // namespace
}  // namespace mapg
