// Unit tests for the power substrate: PG circuit derivations (latencies,
// overhead energy, break-even, rush current) and energy composition.
#include <gtest/gtest.h>

#include <cmath>

#include "power/energy_model.h"
#include "power/pg_circuit.h"
#include "power/tech_params.h"

namespace mapg {
namespace {

TEST(TechParams, DefaultsValidAndUnitHelpers) {
  TechParams t;
  EXPECT_TRUE(t.valid());
  EXPECT_DOUBLE_EQ(t.cycle_time_ns(), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(t.ns_to_cycles(10.0), 30.0);
  EXPECT_DOUBLE_EQ(t.cycles_to_seconds(3e9), 1.0);
  EXPECT_NEAR(t.savable_leakage_w(), 0.475, 1e-12);
}

TEST(TechParams, ValidityRejectsBadValues) {
  TechParams t;
  t.freq_ghz = 0;
  EXPECT_FALSE(t.valid());
  t = TechParams{};
  t.gated_fraction = 1.5;
  EXPECT_FALSE(t.valid());
  t = TechParams{};
  t.dyn_energy_nj[2] = -1;
  EXPECT_FALSE(t.valid());
}

TEST(PgCircuit, LatenciesFromNanoseconds) {
  TechParams tech;  // 3 GHz
  PgCircuitConfig cfg;
  cfg.wakeup_stages = 8;
  cfg.stage_delay_ns = 1.0;
  cfg.settle_ns = 2.0;
  cfg.entry_ns = 2.0;
  const PgCircuit pg(cfg, tech);
  EXPECT_EQ(pg.entry_latency_cycles(), 6u);    // 2 ns * 3 GHz
  EXPECT_EQ(pg.wakeup_latency_cycles(), 30u);  // (8 + 2) ns * 3 GHz
  EXPECT_EQ(pg.wakeup_latency_cycles(4), 18u);
  EXPECT_EQ(pg.wakeup_latency_cycles(16), 54u);
}

TEST(PgCircuit, OverheadEnergyComposition) {
  TechParams tech;
  PgCircuitConfig cfg;
  cfg.c_vrail_nf = 6.0;
  cfg.rail_swing_frac = 0.9;
  cfg.gate_charge_nj = 2.0;
  const PgCircuit pg(cfg, tech);
  // Recharge: C * dV * Vdd = 6n * 0.9 * 1.0 = 5.4 nJ; + 2 nJ gate drive.
  EXPECT_NEAR(pg.overhead_energy_j(), 7.4e-9, 1e-15);
}

TEST(PgCircuit, OverheadScaleMultiplies) {
  TechParams tech;
  PgCircuitConfig cfg;
  cfg.overhead_scale = 2.0;
  const PgCircuit base(PgCircuitConfig{}, tech);
  const PgCircuit scaled(cfg, tech);
  EXPECT_NEAR(scaled.overhead_energy_j(), 2.0 * base.overhead_energy_j(),
              1e-15);
  EXPECT_GE(scaled.break_even_cycles(), base.break_even_cycles());
}

TEST(PgCircuit, BreakEvenMatchesDefinition) {
  TechParams tech;
  const PgCircuit pg(PgCircuitConfig{}, tech);
  const double bet_s = pg.overhead_energy_j() / tech.savable_leakage_w();
  const Cycle expected = static_cast<Cycle>(
      std::ceil(bet_s * tech.freq_ghz * 1e9));
  EXPECT_EQ(pg.break_even_cycles(), expected);
  // Sanity: must be well under one DRAM round trip (~180 cycles) for the
  // MAPG premise to hold.
  EXPECT_LT(pg.break_even_cycles(), 120u);
  EXPECT_GT(pg.break_even_cycles(), 10u);
}

TEST(PgCircuit, RushCurrentScalesInverselyWithStages) {
  TechParams tech;
  const PgCircuit pg(PgCircuitConfig{}, tech);
  const double i1 = pg.rush_current_peak_a(1);
  const double i4 = pg.rush_current_peak_a(4);
  const double i16 = pg.rush_current_peak_a(16);
  EXPECT_NEAR(i1 / i4, 4.0, 1e-9);
  EXPECT_NEAR(i4 / i16, 4.0, 1e-9);
  EXPECT_DOUBLE_EQ(pg.rush_current_peak_a(),
                   pg.rush_current_peak_a(PgCircuitConfig{}.wakeup_stages));
}

TEST(PgCircuit, MinStagesForRushLimitIsMinimal) {
  TechParams tech;
  const PgCircuit pg(PgCircuitConfig{}, tech);
  for (double imax : {0.5, 1.0, 2.0, 5.0}) {
    const std::uint32_t n = pg.min_stages_for_rush_limit(imax);
    ASSERT_GT(n, 0u);
    EXPECT_LE(pg.rush_current_peak_a(n), imax);
    if (n > 1) {
      EXPECT_GT(pg.rush_current_peak_a(n - 1), imax);
    }
  }
  EXPECT_EQ(pg.min_stages_for_rush_limit(0.0), 0u);
  EXPECT_EQ(pg.min_stages_for_rush_limit(-1.0), 0u);
}

TEST(EnergyModel, NoGatingBreakdown) {
  TechParams tech;
  CoreStats core;
  core.instrs = 1000;
  core.cycles = 3000;  // 1 us at 3 GHz
  core.instr_by_class[static_cast<int>(OpClass::kAlu)] = 1000;
  const EnergyBreakdown e = compute_energy(tech, nullptr, core, {});
  EXPECT_NEAR(e.dynamic_j, 1000 * 0.15e-9, 1e-15);
  const double s = 1e-6;
  EXPECT_NEAR(e.core_leak_j, tech.core_leakage_w * s, 1e-12);
  EXPECT_NEAR(e.core_leak_baseline_j, e.core_leak_j, 1e-15);
  EXPECT_NEAR(e.ungated_leak_j, 0.38 * s, 1e-12);
  EXPECT_EQ(e.pg_overhead_j, 0.0);
  EXPECT_EQ(e.idle_clock_j, 0.0);  // no idle cycles
  EXPECT_NEAR(e.total_j(), e.dynamic_j + e.core_leak_j + e.ungated_leak_j,
              1e-15);
}

TEST(EnergyModel, GatingSavesLeakageAndPaysOverhead) {
  TechParams tech;
  const PgCircuit pg(PgCircuitConfig{}, tech);
  CoreStats core;
  core.instrs = 1000;
  core.cycles = 10000;
  core.stall_cycles_dram = 6000;  // idle
  core.instr_by_class[static_cast<int>(OpClass::kAlu)] = 1000;

  GatingActivity act;
  for (int i = 0; i < 10; ++i)
    act.add_transition(SleepMode::kDeep, 500, 6, 30);
  ASSERT_EQ(act.transitions, 10u);
  ASSERT_EQ(act.gated_cycles, 5000u);
  ASSERT_EQ(act.deep_gated_cycles, 5000u);

  const EnergyBreakdown e = compute_energy(tech, &pg, core, act);
  const double gated_s = tech.cycles_to_seconds(5000);
  EXPECT_NEAR(e.core_leak_baseline_j - e.core_leak_j,
              tech.savable_leakage_w() * gated_s, 1e-15);
  EXPECT_NEAR(e.pg_overhead_j, 10 * pg.overhead_energy_j(), 1e-15);
  // Idle clock applies only to idle cycles outside all PG phases.
  const std::uint64_t idle_ungated = 6000 - 5000 - 60 - 300;
  EXPECT_NEAR(e.idle_clock_j,
              tech.idle_clock_w * tech.cycles_to_seconds(
                                      static_cast<double>(idle_ungated)),
              1e-15);
  EXPECT_DOUBLE_EQ(e.core_leak_saved_j(),
                   e.core_leak_baseline_j - e.core_leak_j);
}

TEST(PgCircuit, LightModeIsCheaperAndFaster) {
  TechParams tech;
  const PgCircuit pg(PgCircuitConfig{}, tech);
  EXPECT_LT(pg.overhead_energy_j(SleepMode::kLight),
            pg.overhead_energy_j(SleepMode::kDeep));
  EXPECT_LT(pg.wakeup_latency_cycles(SleepMode::kLight),
            pg.wakeup_latency_cycles(SleepMode::kDeep));
  EXPECT_LT(pg.break_even_cycles(SleepMode::kLight),
            pg.break_even_cycles(SleepMode::kDeep));
  EXPECT_DOUBLE_EQ(pg.save_fraction(SleepMode::kDeep), 1.0);
  EXPECT_LT(pg.save_fraction(SleepMode::kLight), 1.0);
  // Deep accessors match the no-argument (legacy) forms.
  EXPECT_EQ(pg.wakeup_latency_cycles(SleepMode::kDeep),
            pg.wakeup_latency_cycles());
  EXPECT_EQ(pg.break_even_cycles(SleepMode::kDeep), pg.break_even_cycles());
}

TEST(PgCircuit, LightModeOverheadComposition) {
  TechParams tech;
  PgCircuitConfig cfg;
  cfg.c_vrail_nf = 6.0;
  cfg.light_swing_frac = 0.25;
  cfg.gate_charge_nj = 2.0;
  const PgCircuit pg(cfg, tech);
  // Light recharge: C * (0.25 * Vdd) * Vdd = 1.5 nJ; + 2 nJ gate drive.
  EXPECT_NEAR(pg.overhead_energy_j(SleepMode::kLight), 3.5e-9, 1e-15);
}

TEST(EnergyModel, LightGatingSavesFractionally) {
  TechParams tech;
  const PgCircuit pg(PgCircuitConfig{}, tech);
  CoreStats core;
  core.instrs = 100;
  core.cycles = 20000;
  core.stall_cycles_dram = 12000;
  core.instr_by_class[0] = 100;

  GatingActivity deep_act, light_act;
  deep_act.add_transition(SleepMode::kDeep, 5000, 6, 30);
  light_act.add_transition(SleepMode::kLight, 5000, 6, 12);

  const EnergyBreakdown deep = compute_energy(tech, &pg, core, deep_act);
  const EnergyBreakdown light = compute_energy(tech, &pg, core, light_act);
  // Same gated cycles: light saves exactly light_save_frac of deep's saving.
  EXPECT_NEAR(light.core_leak_saved_j(),
              PgCircuitConfig{}.light_save_frac * deep.core_leak_saved_j(),
              1e-15);
  // And pays the smaller transition overhead.
  EXPECT_LT(light.pg_overhead_j, deep.pg_overhead_j);
}

TEST(EnergyModel, MixedModeAccountingAddsUp) {
  TechParams tech;
  const PgCircuit pg(PgCircuitConfig{}, tech);
  CoreStats core;
  core.instrs = 10;
  core.cycles = 100000;
  core.stall_cycles_dram = 50000;
  core.instr_by_class[0] = 10;

  GatingActivity act;
  act.add_transition(SleepMode::kDeep, 3000, 6, 30);
  act.add_transition(SleepMode::kLight, 2000, 6, 12);
  const EnergyBreakdown e = compute_energy(tech, &pg, core, act);

  const double expect_saved =
      tech.savable_leakage_w() *
      tech.cycles_to_seconds(3000.0 +
                             PgCircuitConfig{}.light_save_frac * 2000.0);
  EXPECT_NEAR(e.core_leak_saved_j(), expect_saved, 1e-15);
  const double expect_ovh = pg.overhead_energy_j(SleepMode::kDeep) +
                            pg.overhead_energy_j(SleepMode::kLight);
  EXPECT_NEAR(e.pg_overhead_j, expect_ovh, 1e-15);
}

TEST(EnergyModel, CoreDomainExcludesUngatedLeak) {
  TechParams tech;
  CoreStats core;
  core.instrs = 10;
  core.cycles = 100;
  core.instr_by_class[0] = 10;
  const EnergyBreakdown e = compute_energy(tech, nullptr, core, {});
  EXPECT_NEAR(e.core_domain_j() + e.ungated_leak_j, e.total_j(), 1e-18);
}

TEST(EnergyModel, ToStringMentionsAllComponents) {
  const EnergyBreakdown e{};
  const std::string s = energy_to_string(e);
  for (const char* key :
       {"dynamic", "core leak", "ungated leak", "idle clock", "pg overhead",
        "dram", "TOTAL"})
    EXPECT_NE(s.find(key), std::string::npos) << key;
}

}  // namespace
}  // namespace mapg
