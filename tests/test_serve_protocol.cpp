// Wire-protocol tests (src/serve/protocol.h): frame round-trips over a real
// fd, and the robustness contract — bad magic / version / length, garbage,
// and truncation are rejected with an error, never a short success or a
// crash; a clean peer close before the first header byte is NOT an error.
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include <unistd.h>

#include "serve/protocol.h"

namespace mapg::serve {
namespace {

/// A unidirectional pipe standing in for the TCP socket; read_frame /
/// write_frame only assume read()/write() semantics.
class Pipe {
 public:
  Pipe() { EXPECT_EQ(::pipe(fds_), 0); }
  ~Pipe() {
    close_write();
    close_read();
  }
  int read_fd() const { return fds_[0]; }
  int write_fd() const { return fds_[1]; }
  void close_write() {
    if (fds_[1] >= 0) ::close(fds_[1]);
    fds_[1] = -1;
  }
  void close_read() {
    if (fds_[0] >= 0) ::close(fds_[0]);
    fds_[0] = -1;
  }
  void write_raw(const std::string& bytes) {
    ASSERT_EQ(::write(fds_[1], bytes.data(), bytes.size()),
              static_cast<ssize_t>(bytes.size()));
  }

 private:
  int fds_[2] = {-1, -1};
};

TEST(ServeProtocol, FrameRoundTripOverFd) {
  Pipe pipe;
  const Frame sent{FrameType::kCell, R"({"workload":"mcf-like"})"};
  std::string error;
  ASSERT_TRUE(write_frame(pipe.write_fd(), sent, &error)) << error;
  Frame got;
  ASSERT_TRUE(read_frame(pipe.read_fd(), &got, &error)) << error;
  EXPECT_EQ(got.type, sent.type);
  EXPECT_EQ(got.payload, sent.payload);
}

TEST(ServeProtocol, EmptyPayloadRoundTrips) {
  Pipe pipe;
  std::string error;
  ASSERT_TRUE(write_frame(pipe.write_fd(), Frame{FrameType::kPing, {}},
                          &error));
  Frame got;
  ASSERT_TRUE(read_frame(pipe.read_fd(), &got, &error)) << error;
  EXPECT_EQ(got.type, FrameType::kPing);
  EXPECT_TRUE(got.payload.empty());
}

TEST(ServeProtocol, HeaderLayoutIsLittleEndianMagicFirst) {
  const std::string bytes = encode_frame(Frame{FrameType::kStats, "abc"});
  ASSERT_EQ(bytes.size(), kHeaderBytes + 3);
  // kMagic = 0x4750414D stored little-endian reads "MAPG".
  EXPECT_EQ(bytes.substr(0, 4), "MAPG");
  EXPECT_EQ(static_cast<unsigned char>(bytes[4]), kProtocolVersion);
  EXPECT_EQ(static_cast<unsigned char>(bytes[8]),
            static_cast<std::uint32_t>(FrameType::kStats));
  EXPECT_EQ(static_cast<unsigned char>(bytes[12]), 3u);  // length LE
  EXPECT_EQ(bytes.substr(kHeaderBytes), "abc");
}

TEST(ServeProtocol, ParseHeaderRejectsBadMagic) {
  std::string bytes = encode_frame(Frame{FrameType::kPing, {}});
  bytes[0] = 'X';
  FrameType type;
  std::uint32_t length = 0;
  std::string error;
  EXPECT_FALSE(parse_header(
      reinterpret_cast<const unsigned char*>(bytes.data()), &type, &length,
      &error));
  EXPECT_NE(error.find("magic"), std::string::npos);
}

TEST(ServeProtocol, ParseHeaderRejectsUnknownVersion) {
  std::string bytes = encode_frame(Frame{FrameType::kPing, {}});
  bytes[4] = 99;
  FrameType type;
  std::uint32_t length = 0;
  std::string error;
  EXPECT_FALSE(parse_header(
      reinterpret_cast<const unsigned char*>(bytes.data()), &type, &length,
      &error));
  EXPECT_NE(error.find("version"), std::string::npos);
}

TEST(ServeProtocol, ParseHeaderRejectsOversizedLength) {
  std::string bytes = encode_frame(Frame{FrameType::kPing, {}});
  // length field = kMaxPayload + 1, little-endian at offset 12.
  const std::uint32_t huge = kMaxPayload + 1;
  std::memcpy(bytes.data() + 12, &huge, 4);
  FrameType type;
  std::uint32_t length = 0;
  std::string error;
  EXPECT_FALSE(parse_header(
      reinterpret_cast<const unsigned char*>(bytes.data()), &type, &length,
      &error));
  EXPECT_NE(error.find("exceeds"), std::string::npos);
}

TEST(ServeProtocol, ReadFrameRejectsGarbageStream) {
  Pipe pipe;
  pipe.write_raw("this is not a MAPG frame header, not even close");
  pipe.close_write();
  Frame got;
  std::string error;
  EXPECT_FALSE(read_frame(pipe.read_fd(), &got, &error));
  EXPECT_FALSE(error.empty());
}

TEST(ServeProtocol, ReadFrameReportsTruncatedPayload) {
  Pipe pipe;
  const std::string bytes =
      encode_frame(Frame{FrameType::kCell, std::string(100, 'x')});
  pipe.write_raw(bytes.substr(0, kHeaderBytes + 10));  // peer dies mid-frame
  pipe.close_write();
  Frame got;
  std::string error;
  EXPECT_FALSE(read_frame(pipe.read_fd(), &got, &error));
  EXPECT_NE(error.find("truncated"), std::string::npos);
}

TEST(ServeProtocol, ReadFrameReportsTruncatedHeader) {
  Pipe pipe;
  pipe.write_raw(encode_frame(Frame{FrameType::kPing, {}}).substr(0, 7));
  pipe.close_write();
  Frame got;
  std::string error;
  EXPECT_FALSE(read_frame(pipe.read_fd(), &got, &error));
  EXPECT_FALSE(error.empty());
}

TEST(ServeProtocol, CleanEofIsNotAnError) {
  Pipe pipe;
  pipe.close_write();  // peer closed between frames
  Frame got;
  std::string error = "sentinel";
  EXPECT_FALSE(read_frame(pipe.read_fd(), &got, &error));
  EXPECT_TRUE(error.empty());  // read_frame clears it: clean close
}

TEST(ServeProtocol, WriteFrameRejectsOversizedPayload) {
  Pipe pipe;
  Frame huge{FrameType::kCell, {}};
  huge.payload.resize(kMaxPayload + 1);
  std::string error;
  EXPECT_FALSE(write_frame(pipe.write_fd(), huge, &error));
  EXPECT_FALSE(error.empty());
}

TEST(ServeProtocol, CellRequestJsonRoundTrip) {
  CellRequest req;
  req.config = {{"instructions", "50000"}, {"l2.size_kib", "2048"}};
  req.workload = "lbm-like";
  req.policy = "mapg:alpha=1.5";
  CellRequest back;
  std::string error;
  ASSERT_TRUE(parse_cell_request(cell_request_json(req), &back, &error))
      << error;
  EXPECT_EQ(back.config, req.config);
  EXPECT_EQ(back.workload, req.workload);
  EXPECT_EQ(back.policy, req.policy);
}

TEST(ServeProtocol, SweepRequestJsonRoundTrip) {
  SweepRequest req;
  req.config = {{"seed", "7"}};
  req.workloads = {"mcf-like", "gcc-like"};
  req.policies = {"none", "mapg", "oracle"};
  req.seeds = 3;
  SweepRequest back;
  std::string error;
  ASSERT_TRUE(parse_sweep_request(sweep_request_json(req), &back, &error))
      << error;
  EXPECT_EQ(back.config, req.config);
  EXPECT_EQ(back.workloads, req.workloads);
  EXPECT_EQ(back.policies, req.policies);
  EXPECT_EQ(back.seeds, req.seeds);
}

TEST(ServeProtocol, ParseCellRejectsMissingWorkload) {
  CellRequest req;
  std::string error;
  EXPECT_FALSE(parse_cell_request(*Json::parse(R"({"policy":"mapg"})"),
                                  &req, &error));
  EXPECT_NE(error.find("workload"), std::string::npos);
}

TEST(ServeProtocol, ParseCellRejectsNonStringConfigValue) {
  CellRequest req;
  std::string error;
  EXPECT_FALSE(parse_cell_request(
      *Json::parse(R"({"workload":"mcf-like","config":{"seed":7}})"), &req,
      &error));
  EXPECT_NE(error.find("string"), std::string::npos);
}

TEST(ServeProtocol, ParseCellDefaultsPolicyToNone) {
  CellRequest req;
  std::string error;
  ASSERT_TRUE(parse_cell_request(*Json::parse(R"({"workload":"mcf-like"})"),
                                 &req, &error))
      << error;
  EXPECT_EQ(req.policy, "none");
}

TEST(ServeProtocol, ParseSweepRejectsEmptyAxesAndBadSeeds) {
  SweepRequest req;
  std::string error;
  EXPECT_FALSE(parse_sweep_request(
      *Json::parse(R"({"workloads":[],"policies":["none"]})"), &req,
      &error));
  EXPECT_FALSE(parse_sweep_request(
      *Json::parse(R"({"workloads":["mcf-like"],"policies":["none"],)"
                   R"("seeds":0})"),
      &req, &error));
  EXPECT_FALSE(parse_sweep_request(
      *Json::parse(R"({"workloads":["mcf-like"],"policies":["none"],)"
                   R"("seeds":100000})"),
      &req, &error));
  EXPECT_NE(error.find("seeds"), std::string::npos);
}

}  // namespace
}  // namespace mapg::serve
